"""Differential classification machinery for live fault injection.

A live strike is classified by *differencing* the faulty run against a
golden (fault-free) run of the same workload:

* :class:`DigestRecorder` — a probe-bus observer that folds every commit
  into an *architectural digest*.  The simulator is trace-driven and
  carries no data values, so corruption is modelled as taint
  (``DynInstr.value_tag``, see :mod:`repro.structures.strike`); the digest
  is the canonical record of where taint reached architecturally required
  state: committed control flow, the committed store stream, final
  architectural registers, and memory words.  A fault-free run's digest is
  provably *clean* (taint-empty), so a faulty run whose digest equals the
  golden one is **masked** and any mismatch is **SDC**.

  Commit *counts* are deliberately excluded from the digest: a purely
  timing-visible fault shifts which instruction the shared budget cuts the
  run off at, which would misclassify timing noise as corruption.

* :class:`Watchdog` — a per-cycle observer that bounds the faulty run:
  a hard cycle budget derived from the golden run's length, plus a
  forward-progress check (committed instructions must grow every
  ``progress_window`` cycles).  Either trip raises
  :class:`~repro.errors.HangDetected`, which the strike runner converts to
  the **hang** outcome; no strike can wedge a campaign.

* :class:`_StrikeIdle` / :class:`_StrikeDetected` — control-flow signals
  the strike injector uses to end a run early when its outcome is already
  decided (the struck slot was empty, or the struck structure's protection
  scheme resolved the burst).  Resolution is per (scheme, effective
  cluster length) — :func:`repro.protection.schemes.detected_outcome` —
  so e.g. a 2-bit burst sails through parity but a 3-bit one trips it,
  and SECDED downgrades from ``"corrected"`` to ``"due"`` to a miss as
  the cluster grows.  They derive from ``Exception`` directly — not
  :class:`~repro.errors.ReproError` — so the runner's containment clause
  (corrupted simulator state raising mid-run => DUE) cannot swallow them.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Tuple

from repro.errors import HangDetected


class _StrikeIdle(Exception):
    """The sampled slot held nothing: masked by idleness, stop simulating."""


class _StrikeDetected(Exception):
    """The struck structure's protection scheme resolved the burst
    before consumption (per scheme *and* effective cluster length)."""

    def __init__(self, resolution: str) -> None:
        self.resolution = resolution  # "due" or "corrected"
        super().__init__(resolution)


class DigestRecorder:
    """Folds commits into the run's architectural digest (taint summary).

    Subscribes to ``on_commit``/``on_finalize`` only — it implements no
    part of the residency protocol, so attaching it preserves the probe
    bus's single-residency-subscriber fast path.
    """

    def __init__(self) -> None:
        # (thread, arch reg) -> taint of its last committed writer.  Kept
        # free of zero entries so a clean run's dict stays empty: a clean
        # overwrite *removes* stale taint (dynamically-dead masking).
        self._arch: Dict[Tuple[int, int], int] = {}
        self._mem: Dict[int, int] = {}
        self.tainted_control = 0
        self.tainted_stores = 0
        self.pending_taint = 0
        self.finalized = False

    # -- probe-bus hooks ---------------------------------------------------------

    def on_commit(self, core, instr) -> None:
        tag = instr.value_tag
        if instr.dest_reg is not None:
            key = (instr.thread_id, instr.dest_reg)
            if tag:
                self._arch[key] = tag
            elif key in self._arch:
                del self._arch[key]
        if tag:
            if instr.is_control:
                # A corrupted input to committed control flow: the real
                # machine's direction/target could have diverged.
                self.tainted_control += 1
            if instr.is_store:
                # Corrupted store data was exposed to the memory system
                # even if a later clean store overwrites the word.
                self.tainted_stores += 1

    def on_finalize(self, core) -> None:
        self._mem = {addr: tag for addr, tag in core.mem_tags.items() if tag}
        # Taint still in flight when the shared budget ended the run is
        # bound for architectural state — the ACE ledger's drain counts
        # that residency as ACE, so the digest must see it too.  The core
        # zeroes all trace tags at construction (taint mode), so any
        # nonzero tag here was planted by this run.
        self.pending_taint = sum(
            1
            for thread in core.threads
            for instr in thread.trace.instrs
            if instr.value_tag and instr.is_ace
            and instr.fetched_at >= 0 and instr.committed_at < 0)
        self.finalized = True

    # -- digest ------------------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True when no taint ever reached architectural state."""
        return not (self._arch or self._mem or self.pending_taint
                    or self.tainted_control or self.tainted_stores)

    def digest(self) -> str:
        """Canonical hash of the architectural taint state."""
        payload = {
            "arch": sorted(
                (tid, reg, tag) for (tid, reg), tag in self._arch.items()),
            "mem": sorted(self._mem.items()),
            "control": self.tainted_control,
            "stores": self.tainted_stores,
            "pending": self.pending_taint,
        }
        blob = json.dumps(payload, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class Watchdog:
    """Per-cycle hang detector for one faulty run.

    ``cycle_limit`` is absolute (the golden run's cycle count scaled by
    the campaign's budget factor, plus slack); ``progress_window`` bounds
    how long total committed instructions may stay flat — a struck
    scheduler bit typically stalls one thread while the others drain, so
    the progress check fires long before the cycle budget does.
    """

    def __init__(self, cycle_limit: int, progress_window: int = 0) -> None:
        self.cycle_limit = cycle_limit
        self.progress_window = progress_window
        self._last_committed = -1
        self._next_check = progress_window

    def on_cycle(self, core) -> None:
        if core.cycle >= self.cycle_limit:
            raise HangDetected(core.cycle, core.total_committed,
                               f"exceeded cycle budget {self.cycle_limit}")
        if not self.progress_window or core.cycle < self._next_check:
            return
        if core.total_committed == self._last_committed:
            raise HangDetected(
                core.cycle, core.total_committed,
                f"no commit in {self.progress_window} cycles")
        self._last_committed = core.total_committed
        self._next_check = core.cycle + self.progress_window
