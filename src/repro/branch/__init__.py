"""Per-thread branch prediction: gshare + BTB + return address stack.

Table 1 gives every thread its own 2K-entry gshare predictor with a 10-bit
global history, a 2K-entry 4-way BTB and a 32-entry return address stack.
"""

from repro.branch.gshare import GsharePredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.unit import BranchUnit, BranchPrediction

__all__ = [
    "GsharePredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "BranchUnit",
    "BranchPrediction",
]
