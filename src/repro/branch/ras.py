"""Return address stack: a bounded circular stack of return addresses.

Overflow overwrites the oldest entry (as in real hardware); underflow
returns None and the front end falls back to the BTB.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError


class ReturnAddressStack:
    """Fixed-capacity return address stack."""

    def __init__(self, entries: int = 32) -> None:
        if entries <= 0:
            raise ConfigError("RAS entries must be positive")
        self._capacity = entries
        self._stack: List[int] = []
        self.overflows = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        if len(self._stack) >= self._capacity:
            del self._stack[0]
            self.overflows += 1
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def snapshot(self) -> List[int]:
        """Checkpoint for squash recovery."""
        return list(self._stack)

    def restore(self, snapshot: List[int]) -> None:
        self._stack = list(snapshot)

    def __len__(self) -> int:
        return len(self._stack)
