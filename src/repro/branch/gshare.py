"""Gshare direction predictor (McFarling-style).

A table of 2-bit saturating counters indexed by PC XOR global branch
history.  The speculative history is updated at prediction time and repaired
on a misprediction, matching how a real front end keeps its history aligned
with the fetch stream.
"""

from __future__ import annotations

from repro.errors import ConfigError

_TAKEN_THRESHOLD = 2  # counters 2,3 predict taken
_COUNTER_MAX = 3


class GsharePredictor:
    """2-bit-counter gshare predictor with speculative global history."""

    def __init__(self, entries: int = 2048, history_bits: int = 10) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError("gshare entries must be a positive power of two")
        self._entries = entries
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        # Weakly taken start: avoids a cold-start bias toward not-taken loops.
        self._table = bytearray([_TAKEN_THRESHOLD] * entries)
        self._history = 0
        self.lookups = 0
        self.correct = 0

    def _index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ history) & self._mask

    def predict(self, pc: int) -> tuple[bool, int]:
        """Predict direction for the branch at ``pc``.

        Returns ``(taken, history_checkpoint)``; the checkpoint restores the
        speculative history if this branch turns out mispredicted.
        """
        checkpoint = self._history
        taken = self._table[self._index(pc, self._history)] >= _TAKEN_THRESHOLD
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        self.lookups += 1
        return taken, checkpoint

    def resolve(self, pc: int, taken: bool, predicted: bool,
                history_checkpoint: int) -> None:
        """Train the counter and repair speculative history on a mispredict."""
        idx = self._index(pc, history_checkpoint)
        ctr = self._table[idx]
        if taken:
            self._table[idx] = min(ctr + 1, _COUNTER_MAX)
        else:
            self._table[idx] = max(ctr - 1, 0)
        if predicted == taken:
            self.correct += 1
        else:
            self._history = ((history_checkpoint << 1) | int(taken)) & self._history_mask

    @property
    def history(self) -> int:
        """Current speculative global history register value."""
        return self._history

    @property
    def accuracy(self) -> float:
        """Fraction of resolved lookups predicted correctly."""
        return self.correct / self.lookups if self.lookups else 0.0
