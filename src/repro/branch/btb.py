"""Branch target buffer: set-associative tag/target store with LRU."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigError


class BranchTargetBuffer:
    """A ``entries``-entry, ``assoc``-way BTB keyed by branch PC."""

    def __init__(self, entries: int = 2048, assoc: int = 4) -> None:
        if entries <= 0 or assoc <= 0 or entries % assoc:
            raise ConfigError("BTB entries must be a positive multiple of assoc")
        self._num_sets = entries // assoc
        if self._num_sets & (self._num_sets - 1):
            raise ConfigError("BTB set count must be a power of two")
        self._assoc = assoc
        # Each set is an ordered dict {tag: target}; insertion order is LRU order.
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, pc: int) -> tuple[Dict[int, int], int]:
        index = (pc >> 2) & (self._num_sets - 1)
        tag = pc >> 2
        return self._sets[index], tag

    def lookup(self, pc: int) -> Optional[int]:
        """Return the predicted target for ``pc`` or None on a BTB miss."""
        entries, tag = self._locate(pc)
        target = entries.get(tag)
        if target is None:
            self.misses += 1
            return None
        # Refresh LRU position.
        del entries[tag]
        entries[tag] = target
        self.hits += 1
        return target

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target of a taken control instruction."""
        entries, tag = self._locate(pc)
        if tag in entries:
            del entries[tag]
        elif len(entries) >= self._assoc:
            oldest = next(iter(entries))
            del entries[oldest]
        entries[tag] = target
