"""Combined per-thread branch unit: gshare direction + BTB target + RAS.

The pipeline is trace-driven, so the *actual* outcome of every control
instruction is known from the trace; this unit provides the *prediction*,
and a misprediction (wrong direction, or taken with a wrong/unknown target)
triggers wrong-path fetch until the branch resolves in the execute stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import BranchConfig
from repro.isa.instruction import DynInstr
from repro.isa.opcodes import OpClass
from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.ras import ReturnAddressStack


@dataclass
class BranchPrediction:
    """Everything needed to detect and recover from a misprediction."""

    taken: bool
    target: Optional[int]           # None: taken predicted but target unknown
    history_checkpoint: int
    ras_snapshot: Optional[List[int]]

    def mispredicts(self, instr: DynInstr) -> bool:
        """True when this prediction disagrees with the trace outcome."""
        if self.taken != instr.taken:
            return True
        if instr.taken and self.target != instr.target:
            return True
        return False


class BranchUnit:
    """One thread's complete front-end prediction state."""

    def __init__(self, config: BranchConfig) -> None:
        self.gshare = GsharePredictor(config.gshare_entries, config.history_bits)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_assoc)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, instr: DynInstr) -> BranchPrediction:
        """Predict the control instruction at fetch time."""
        self.predictions += 1
        ras_snapshot: Optional[List[int]] = None
        if instr.op is OpClass.BRANCH:
            taken, checkpoint = self.gshare.predict(instr.pc)
            target = self.btb.lookup(instr.pc) if taken else None
            return BranchPrediction(taken, target, checkpoint, ras_snapshot)
        # Unconditional control: direction is always taken.
        checkpoint = self.gshare.history  # history untouched for non-conditionals
        if instr.op is OpClass.CALL:
            ras_snapshot = self.ras.snapshot()
            self.ras.push(instr.pc + 4)
            target = self.btb.lookup(instr.pc)
        elif instr.op is OpClass.RET:
            ras_snapshot = self.ras.snapshot()
            target = self.ras.pop()
        else:  # JUMP
            target = self.btb.lookup(instr.pc)
        return BranchPrediction(True, target, checkpoint, ras_snapshot)

    def resolve(self, instr: DynInstr, prediction: BranchPrediction) -> bool:
        """Train predictors at branch resolution; returns True on mispredict.

        On a misprediction the speculative gshare history is repaired and,
        for call/return instructions, the RAS is restored to its pre-fetch
        state and replayed with the correct outcome.
        """
        mispredicted = prediction.mispredicts(instr)
        if instr.op is OpClass.BRANCH:
            self.gshare.resolve(instr.pc, instr.taken, prediction.taken,
                                prediction.history_checkpoint)
        if instr.taken:
            self.btb.update(instr.pc, instr.target)
        if mispredicted:
            self.mispredictions += 1
            if prediction.ras_snapshot is not None:
                self.ras.restore(prediction.ras_snapshot)
                if instr.op is OpClass.CALL:
                    self.ras.push(instr.pc + 4)
                elif instr.op is OpClass.RET:
                    self.ras.pop()
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0
