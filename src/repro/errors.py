"""Exception hierarchy for the repro simulator.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A machine or simulation configuration value is invalid."""


class WorkloadError(ReproError):
    """A workload mix or benchmark profile is malformed or unknown."""


class StructureError(ReproError):
    """A microarchitecture structure was used inconsistently.

    Raised for protocol violations such as freeing a physical register twice,
    committing an incomplete ROB head, or deallocating an empty queue; these
    indicate a simulator bug, not a modelled hardware condition.
    """


class SimulationError(ReproError):
    """The simulation reached an inconsistent state and cannot continue."""


class HangDetected(SimulationError):
    """A live-injection watchdog tripped: the faulty run stopped making
    forward progress (or blew past its golden-run cycle budget).

    Raised by :class:`repro.faultinject.classify.Watchdog` and caught by
    the strike runner, which classifies the strike as HANG; it never
    propagates out of a campaign.
    """

    def __init__(self, cycle: int, committed: int, reason: str) -> None:
        self.cycle = cycle
        self.committed = committed
        self.reason = reason
        super().__init__(
            f"hang at cycle {cycle} ({committed} committed): {reason}")


class MissingResultError(ReproError):
    """A renderer asked for a simulation whose job permanently failed.

    Raised by :class:`repro.experiments.runner.ResultCache` instead of
    silently re-simulating inline, so artefact renderers can degrade to an
    explicit ``MISSING(<job>)`` marker rather than masking a supervised
    run's failure with a fresh (possibly equally doomed) attempt.
    """

    def __init__(self, label: str, digest: str) -> None:
        self.label = label
        self.digest = digest
        super().__init__(f"no result for {label} "
                         f"(job {digest[:12]} failed permanently)")


class ExecutionFailed(ReproError):
    """Supervised execution aborted: the permanent-failure budget ran out.

    Raised by :class:`repro.resilience.Supervisor` once more jobs have
    failed permanently than ``--max-failures`` tolerates.  Every payload
    that *did* complete has already been committed to the result cache
    before this is raised, so a re-run only repeats the genuinely
    unfinished work.  ``report`` carries the structured
    :class:`repro.resilience.FailureReport`.
    """

    def __init__(self, message: str, report: object = None) -> None:
        self.report = report
        super().__init__(message)


class CampaignCancelled(ReproError):
    """Supervised execution stopped because cancellation was requested.

    Raised by :class:`repro.resilience.Supervisor` out of :meth:`run`
    after a graceful drain: every future that finished during the grace
    period has been committed (and journaled), every other in-flight job
    has been reclaimed by tearing the pool down, and nothing new was
    submitted.  ``committed`` counts payloads committed by the drain
    itself; ``reclaimed`` counts in-flight jobs abandoned un-run.  The
    campaign service maps this onto the ``cancelled`` terminal state.
    """

    def __init__(self, message: str, committed: int = 0,
                 reclaimed: int = 0) -> None:
        self.committed = committed
        self.reclaimed = reclaimed
        super().__init__(message)


class ArtifactIntegrityError(ReproError):
    """A stored artifact's bytes no longer re-hash to their recorded
    checksum (bit rot, truncation, or tampering on disk).

    Raised by :class:`repro.service.store.ArtifactStore` when asked to
    *serve* such an artifact — a result endpoint must fail loudly (HTTP
    500 naming the digest) rather than hand a client corrupt science.
    """

    def __init__(self, digest: str, detail: str) -> None:
        self.digest = digest
        super().__init__(
            f"artifact {digest} failed integrity verification: {detail}")


class InvariantViolation(ReproError):
    """A runtime conservation-law audit failed (see :mod:`repro.audit`).

    Carries enough context to diagnose the drift without re-running:
    the invariant that failed, the offending structure, the cycle the
    check ran at, and the numeric delta between observed and expected.
    """

    def __init__(self, invariant: str, structure: str, cycle: int,
                 delta: float, detail: str = "") -> None:
        self.invariant = invariant
        self.structure = structure
        self.cycle = cycle
        self.delta = delta
        message = (f"invariant '{invariant}' violated by {structure} "
                   f"at cycle {cycle} (delta={delta:+g})")
        if detail:
            message += f": {detail}"
        super().__init__(message)
