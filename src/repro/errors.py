"""Exception hierarchy for the repro simulator.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A machine or simulation configuration value is invalid."""


class WorkloadError(ReproError):
    """A workload mix or benchmark profile is malformed or unknown."""


class StructureError(ReproError):
    """A microarchitecture structure was used inconsistently.

    Raised for protocol violations such as freeing a physical register twice,
    committing an incomplete ROB head, or deallocating an empty queue; these
    indicate a simulator bug, not a modelled hardware condition.
    """


class SimulationError(ReproError):
    """The simulation reached an inconsistent state and cannot continue."""
