"""repro — a reliability-aware SMT processor simulator.

Reproduction of *"An Analysis of Microarchitecture Vulnerability to Soft
Errors on Simultaneous Multithreaded Architectures"* (Zhang, Fu, Li &
Fortes, ISPASS 2007): a cycle-level SMT pipeline model instrumented with
ACE-bit Architectural Vulnerability Factor (AVF) accounting, six fetch
policies, statistical SPEC CPU 2000 workload models, and a benchmark
harness regenerating every figure of the paper's evaluation.

Quick start::

    from repro import simulate, get_mix, Structure

    result = simulate(get_mix("4-MIX-A"), policy="ICOUNT")
    print(result.ipc, result.avf.avf[Structure.IQ])
"""

from repro.config import MachineConfig, SimConfig, DEFAULT_CONFIG, scaled_instruction_budget
from repro.avf import (
    AvfEngine,
    AvfReport,
    FitEstimate,
    PhaseSeries,
    Structure,
    fit_estimate,
    phase_statistics,
)
from repro.fetch import POLICY_NAMES, create_policy
from repro.sim import (
    SimResult,
    ThreadResult,
    compare_results,
    simulate,
    simulate_single_thread,
)
from repro.workload import (
    PROFILES,
    TABLE2_MIXES,
    BenchmarkProfile,
    WorkloadMix,
    generate_trace,
    get_mix,
    get_profile,
    mixes_for,
)
from repro.metrics import (
    harmonic_mean_weighted_ipc,
    normalize_to_baseline,
    reliability_efficiency,
    weighted_speedup,
)

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "SimConfig",
    "DEFAULT_CONFIG",
    "scaled_instruction_budget",
    "AvfEngine",
    "AvfReport",
    "FitEstimate",
    "fit_estimate",
    "PhaseSeries",
    "phase_statistics",
    "Structure",
    "POLICY_NAMES",
    "create_policy",
    "SimResult",
    "ThreadResult",
    "simulate",
    "simulate_single_thread",
    "compare_results",
    "PROFILES",
    "TABLE2_MIXES",
    "BenchmarkProfile",
    "WorkloadMix",
    "generate_trace",
    "get_mix",
    "get_profile",
    "mixes_for",
    "harmonic_mean_weighted_ipc",
    "normalize_to_baseline",
    "reliability_efficiency",
    "weighted_speedup",
    "__version__",
]
