"""Slack fetch: SRT's leading/trailing thread arrangement.

The redundant pair runs the same instruction stream on two contexts.  The
*trailing* thread is held a bounded number of committed instructions behind
the *leader*: far enough back that the leader has already resolved the
branches and warmed the cache lines the trailer is about to need, close
enough that the comparison buffer stays small.  Fetch priority therefore:

* gate the trailer whenever its distance to the leader drops below
  ``min_slack``;
* gate the *leader* whenever the trailer has fallen more than ``max_slack``
  behind (the store-comparison buffer would overflow);
* otherwise ICOUNT order.

Non-redundant threads sharing the machine are scheduled by ICOUNT among
themselves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.errors import ConfigError
from repro.fetch.base import FetchPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore


class SlackFetchPolicy(FetchPolicy):
    name = "SLACK"

    def __init__(self, leader: int = 0, trailer: int = 1,
                 min_slack: int = 32, max_slack: int = 256) -> None:
        if leader == trailer:
            raise ConfigError("leader and trailer must be distinct contexts")
        if not 0 < min_slack < max_slack:
            raise ConfigError("need 0 < min_slack < max_slack")
        self.leader = leader
        self.trailer = trailer
        self.min_slack = min_slack
        self.max_slack = max_slack
        self.trailer_gated_cycles = 0
        self.leader_gated_cycles = 0

    def slack_instructions(self, core: "SMTCore") -> int:
        """Current lead-over-trail distance in committed instructions."""
        return (core.thread(self.leader).committed
                - core.thread(self.trailer).committed)

    def priorities(self, core: "SMTCore") -> List[int]:
        eligible = core.fetchable_threads()
        slack = self.slack_instructions(core)
        gated = set()
        if slack < self.min_slack:
            gated.add(self.trailer)
            self.trailer_gated_cycles += 1
        elif slack > self.max_slack:
            gated.add(self.leader)
            self.leader_gated_cycles += 1
        order = self.icount_order(core, [t for t in eligible if t not in gated])
        # Leader first among the redundant pair when both are eligible:
        # its progress is what unblocks the trailer.
        if self.leader in order:
            order.remove(self.leader)
            order.insert(0, self.leader)
        if not order and eligible:
            return self.icount_order(core, eligible)[:1]
        return order
