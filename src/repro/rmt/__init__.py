"""Redundant multithreading (RMT): SMT as a fault-*detection* substrate.

The paper's related-work section (refs [24, 25]: Reinhardt & Mukherjee's
SRT, Vijaykumar et al.'s SRTR) points at the other face of the
SMT-reliability coin: instead of asking how multithreading changes
vulnerability, use the spare context to run the *same* program twice and
compare — a transient strike that corrupts one copy makes the streams
diverge and is detected at the comparison point.

This package implements an SRT-style harness on the simulator:

* :class:`~repro.rmt.slack.SlackFetchPolicy` — the leading/trailing thread
  arrangement with a bounded slack, SRT's key mechanism (the trail runs in
  the lead's shadow: branch outcomes and prefetched cache lines are
  resolved by the time it needs them);
* :func:`~repro.rmt.harness.run_redundant` — run a program redundantly,
  measure the redundancy tax (lead IPC vs solo IPC) and the slack actually
  maintained;
* :func:`~repro.rmt.coverage.coverage_analysis` — rerun the fault-injection
  campaign under a sphere of replication: strikes that were silent data
  corruptions become *detected* (DUE) when they land in replicated state.
"""

from repro.rmt.slack import SlackFetchPolicy
from repro.rmt.harness import RedundantRunResult, run_redundant
from repro.rmt.coverage import CoverageResult, coverage_analysis, SPHERE_OF_REPLICATION

__all__ = [
    "SlackFetchPolicy",
    "RedundantRunResult",
    "run_redundant",
    "CoverageResult",
    "coverage_analysis",
    "SPHERE_OF_REPLICATION",
]
