"""Fault coverage under redundant multithreading.

SRT's sphere of replication: all state computed redundantly — here, every
pipeline structure the injection campaign covers (IQ, ROB, LSQ, register
file, FUs) — is protected by comparison: a transient strike that corrupts
one copy's ACE state makes the streams diverge and is *detected* (a DUE,
detected unrecoverable error) instead of escaping as silent data
corruption.  State outside the sphere (the memory system) is conventionally
ECC-protected and is not part of this analysis.

The analysis reruns the fault-injection campaign on the redundant pair and
reclassifies: every would-be SDC inside the sphere becomes a DUE.  The
classic RMT picture emerges: the *event* rate goes up (two copies expose
roughly twice the ACE state, plus the machine runs longer), while the
*silent corruption* rate inside the sphere drops to zero — reliability is
bought with throughput (see :mod:`repro.rmt.harness`) and error-handling
rate, not magic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.avf.structures import Structure
from repro.config import DEFAULT_CONFIG, MachineConfig, SimConfig
from repro.faultinject.campaign import (
    INJECTABLE,
    InjectionCampaignResult,
    InjectionOutcome,
    run_campaign,
)
from repro.rmt.slack import SlackFetchPolicy

#: Structures inside SRT's sphere of replication (strike -> divergence ->
#: detection).  Everything the campaign can inject into is replicated
#: pipeline state.
SPHERE_OF_REPLICATION = frozenset(INJECTABLE)


@dataclass
class StructureCoverage:
    """Unprotected-vs-RMT outcome rates for one structure."""

    structure: Structure
    unprotected_sdc_rate: float   # solo run: strikes that silently corrupt
    protected_due_rate: float     # RMT run: strikes detected by comparison
    protected_sdc_rate: float     # RMT run: escapes (zero inside the sphere)


@dataclass
class CoverageResult:
    program: str
    injections: int
    structures: Dict[Structure, StructureCoverage] = field(default_factory=dict)
    solo_campaign: Optional[InjectionCampaignResult] = None
    rmt_campaign: Optional[InjectionCampaignResult] = None

    def summary(self) -> str:
        lines = [f"RMT coverage — {self.program} "
                 f"({self.injections} strikes/structure)",
                 f"{'structure':<10} {'solo SDC':>9} {'RMT DUE':>9} {'RMT SDC':>9}"]
        for s, c in self.structures.items():
            lines.append(f"{s.value:<10} {c.unprotected_sdc_rate:9.4f} "
                         f"{c.protected_due_rate:9.4f} "
                         f"{c.protected_sdc_rate:9.4f}")
        return "\n".join(lines)


def coverage_analysis(program: str,
                      injections: int = 4000,
                      instructions: int = 2000,
                      structures: Sequence[Structure] = tuple(INJECTABLE),
                      config: Optional[MachineConfig] = None,
                      seed: int = 7) -> CoverageResult:
    """Compare strike outcomes: unprotected solo run vs SRT redundant pair."""
    config = config or DEFAULT_CONFIG
    solo = run_campaign([program], injections=injections,
                        structures=structures, config=config,
                        sim=SimConfig(max_instructions=instructions, seed=seed),
                        seed=seed)
    rmt = run_campaign(
        [program, program],
        injections=injections,
        structures=structures,
        policy=SlackFetchPolicy(leader=0, trailer=1),
        config=config,
        sim=SimConfig(max_instructions=2 * instructions, seed=seed),
        seed=seed,
    )
    result = CoverageResult(program=program, injections=injections,
                            solo_campaign=solo, rmt_campaign=rmt)
    for s in structures:
        solo_c = solo.structures[s]
        rmt_c = rmt.structures[s]
        inside = s in SPHERE_OF_REPLICATION
        rmt_sdc = rmt_c.outcomes.get(InjectionOutcome.SDC, 0) / injections
        result.structures[s] = StructureCoverage(
            structure=s,
            unprotected_sdc_rate=solo_c.sdc_rate,
            protected_due_rate=rmt_sdc if inside else 0.0,
            protected_sdc_rate=0.0 if inside else rmt_sdc,
        )
    return result
