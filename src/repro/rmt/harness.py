"""Redundant execution harness: run a program twice, measure the tax.

Trace-driven redundancy: both contexts execute the *same* deterministic
trace (same profile, same seed), so their committed streams are identical
by construction and the output comparison itself needs no modelling — what
remains measurable, and what this harness reports, is the *cost* of
redundancy (the logical program's throughput against running it alone,
unprotected) and the slack discipline (how far apart the copies actually
ran).  The trailing thread's cache behaviour also shows SRT's classic
benefit: the leader prefetches for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import DEFAULT_CONFIG, MachineConfig, SimConfig
from repro.rmt.slack import SlackFetchPolicy
from repro.sim.results import SimResult
from repro.sim.session import SimSession
from repro.sim.simulator import simulate_single_thread
from repro.workload.generator import generate_trace
from repro.workload.spec2000 import get_profile


@dataclass
class RedundantRunResult:
    """Outcome of one redundant run plus its unprotected baseline."""

    program: str
    redundant: SimResult      # two copies on the SMT machine
    solo: SimResult           # one copy alone (unprotected baseline)
    min_slack: int
    max_slack: int
    trailer_gated_cycles: int
    leader_gated_cycles: int

    @property
    def logical_ipc(self) -> float:
        """Throughput of the *protected program*: the leading copy's IPC."""
        return self.redundant.threads[0].ipc

    @property
    def redundancy_tax(self) -> float:
        """Fractional slowdown of the logical program vs running unprotected."""
        if self.solo.ipc <= 0:
            return 0.0
        return 1.0 - self.logical_ipc / self.solo.ipc

    @property
    def trailer_dl1_benefit(self) -> bool:
        """True when the pair's DL1 miss rate beats doubling the solo rate —
        the leader's accesses prefetch for the trailer."""
        return self.redundant.dl1_miss_rate < self.solo.dl1_miss_rate * 1.05

    def summary(self) -> str:
        return (
            f"RMT {self.program}: logical IPC {self.logical_ipc:.3f} vs solo "
            f"{self.solo.ipc:.3f} (tax {self.redundancy_tax:.1%}); "
            f"slack [{self.min_slack}, {self.max_slack}], trailer gated "
            f"{self.trailer_gated_cycles} cycles, leader gated "
            f"{self.leader_gated_cycles}"
        )


def run_redundant(program: str,
                  instructions: int = 2500,
                  min_slack: int = 32,
                  max_slack: int = 256,
                  config: Optional[MachineConfig] = None,
                  seed: int = 1) -> RedundantRunResult:
    """Run ``program`` as an SRT pair and against its unprotected baseline.

    Both copies execute the identical trace (their address spaces differ by
    context, as two address-space-identical copies would differ physically).
    The run ends when the *leader* commits ``instructions``.
    """
    config = config or DEFAULT_CONFIG
    # Budget covers leader + trailer commits.
    sim = SimConfig(max_instructions=2 * instructions, seed=seed)
    profile = get_profile(program)
    traces = [generate_trace(profile, tid, instructions, seed=seed)
              for tid in (0, 1)]
    policy = SlackFetchPolicy(leader=0, trailer=1,
                              min_slack=min_slack, max_slack=max_slack)
    session = SimSession([program, program], policy=policy, config=config,
                         sim=sim, traces=traces)
    redundant = session.run()
    solo = simulate_single_thread(program, instructions, config=config,
                                  seed=seed)
    return RedundantRunResult(
        program=program,
        redundant=redundant,
        solo=solo,
        min_slack=min_slack,
        max_slack=max_slack,
        trailer_gated_cycles=policy.trailer_gated_cycles,
        leader_gated_cycles=policy.leader_gated_cycles,
    )
