"""Miss status holding registers: merge and bound outstanding misses.

An MSHR file tracks cache lines whose fill is in flight.  A second miss to
an outstanding line *merges*: it completes when the original fill arrives
rather than starting a new memory access.  A full MSHR file is a structural
hazard — the requester must retry next cycle.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigError


class MshrFile:
    """Outstanding-miss registry for one cache level."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ConfigError("MSHR entries must be positive")
        self._capacity = entries
        self._outstanding: Dict[int, int] = {}  # line_addr -> ready_cycle
        self.merges = 0
        self.allocations = 0
        self.full_stalls = 0

    def lookup(self, line_addr: int, cycle: int) -> Optional[int]:
        """If ``line_addr`` is in flight, return its ready cycle (a merge)."""
        self._expire(cycle)
        ready = self._outstanding.get(line_addr)
        if ready is not None:
            self.merges += 1
        return ready

    def allocate(self, line_addr: int, ready_cycle: int, cycle: int) -> bool:
        """Track a new outstanding miss; False when the file is full."""
        self._expire(cycle)
        if len(self._outstanding) >= self._capacity:
            self.full_stalls += 1
            return False
        self._outstanding[line_addr] = ready_cycle
        self.allocations += 1
        return True

    def _expire(self, cycle: int) -> None:
        """Retire entries whose fills have arrived."""
        if not self._outstanding:
            return
        done = [la for la, ready in self._outstanding.items() if ready <= cycle]
        for la in done:
            del self._outstanding[la]

    def clear(self) -> None:
        """Drop all tracked misses (end of functional warmup)."""
        self._outstanding.clear()

    def outstanding_count(self, cycle: int) -> int:
        self._expire(cycle)
        return len(self._outstanding)

    @property
    def capacity(self) -> int:
        return self._capacity
