"""Set-associative, write-back, write-allocate cache with LRU replacement.

The cache models *contents and timing inputs* (hit/miss, evictions); latency
composition across levels lives in :mod:`repro.memory.hierarchy`.  Lines keep
per-word access metadata when ``track_words`` is enabled so the AVF engine
can classify the data array at word granularity (paper Section 4.1: only the
accessed portion of a block is ACE, which is why the DL1 *tag* AVF exceeds
the *data* AVF).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple

from repro.config import CacheConfig

WORD_BYTES = 8


class CacheLine:
    """One resident cache line plus the metadata the AVF engine consumes."""

    __slots__ = (
        "tag", "set_index", "thread_id", "fill_cycle", "last_access_cycle",
        "word_last_read", "word_last_write", "word_dirty", "accesses",
    )

    def __init__(self, tag: int, set_index: int, thread_id: int, fill_cycle: int,
                 words: int) -> None:
        self.tag = tag
        self.set_index = set_index
        self.thread_id = thread_id
        self.fill_cycle = fill_cycle
        self.last_access_cycle = fill_cycle
        # Per-word timestamps; -1 means "never since fill".
        self.word_last_read: List[int] = [-1] * words
        self.word_last_write: List[int] = [-1] * words
        self.word_dirty: List[bool] = [False] * words
        self.accesses = 0

    @property
    def dirty(self) -> bool:
        return any(self.word_dirty)


class CacheObserver(Protocol):
    """Receives content events from a cache for reliability accounting."""

    def on_evict(self, line: CacheLine, cycle: int) -> None:
        """Called when ``line`` leaves the cache (eviction or flush)."""


class NullObserver:
    """Observer that ignores all events."""

    def on_evict(self, line: CacheLine, cycle: int) -> None:
        pass


class Cache:
    """A single cache level."""

    def __init__(self, config: CacheConfig, track_words: bool = False,
                 observer: Optional[CacheObserver] = None) -> None:
        self.config = config
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self._line_bytes = config.line_bytes
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = self._num_sets - 1
        self._index_bits = max(self._num_sets.bit_length() - 1, 1)
        self._words = config.line_bytes // WORD_BYTES if track_words else 1
        self._track_words = track_words
        self._observer = observer or NullObserver()
        # Each set: {tag: CacheLine}, insertion order == LRU order.
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # -- address helpers -------------------------------------------------------

    def line_address(self, addr: int) -> int:
        return addr >> self._offset_bits

    def _set_index(self, line_addr: int) -> int:
        # Fibonacci-hash the line address into the index.  The synthetic
        # address space is a handful of dense regions at bases that are
        # multiples of 2^32; a plain low-bit index would alias every
        # thread's regions into the same few sets.  Multiplicative hashing
        # spreads dense ranges uniformly over all sets — the role the
        # virtual-to-physical mapping plays for a real cache — while staying
        # deterministic and conflict-free for sequential streams.
        h = (line_addr * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return (h >> (64 - self._index_bits)) & self._index_mask

    def _word_index(self, addr: int) -> int:
        if not self._track_words:
            return 0
        return (addr & (self._line_bytes - 1)) // WORD_BYTES

    # -- content operations ----------------------------------------------------

    def probe(self, addr: int) -> bool:
        """True when the line holding ``addr`` is resident (no side effects)."""
        line_addr = self.line_address(addr)
        return line_addr in self._sets[self._set_index(line_addr)]

    def access(self, addr: int, cycle: int, thread_id: int,
               is_write: bool) -> Tuple[bool, CacheLine, Optional[CacheLine]]:
        """Read or write the word at ``addr``.

        Returns ``(hit, line, evicted_line)``.  On a miss the line is
        installed (write-allocate) and the victim, if any, is returned so the
        caller can model its writeback.
        """
        line_addr = self.line_address(addr)
        entries = self._sets[self._set_index(line_addr)]
        line = entries.get(line_addr)
        evicted: Optional[CacheLine] = None
        hit = line is not None
        if hit:
            self.hits += 1
            del entries[line_addr]     # refresh LRU position
            entries[line_addr] = line
        else:
            self.misses += 1
            evicted = self._install(line_addr, entries, cycle, thread_id)
            line = entries[line_addr]
        self._touch(line, addr, cycle, is_write)
        return hit, line, evicted

    def _install(self, line_addr: int, entries: Dict[int, CacheLine], cycle: int,
                 thread_id: int) -> Optional[CacheLine]:
        evicted: Optional[CacheLine] = None
        if len(entries) >= self._assoc:
            victim_tag = next(iter(entries))
            evicted = entries.pop(victim_tag)
            self.evictions += 1
            if evicted.dirty:
                self.writebacks += 1
            self._observer.on_evict(evicted, cycle)
        entries[line_addr] = CacheLine(line_addr, self._set_index(line_addr),
                                       thread_id, cycle, self._words)
        return evicted

    def _touch(self, line: CacheLine, addr: int, cycle: int, is_write: bool) -> None:
        line.last_access_cycle = cycle
        line.accesses += 1
        w = self._word_index(addr)
        if is_write:
            line.word_last_write[w] = cycle
            line.word_dirty[w] = True
        else:
            line.word_last_read[w] = cycle

    def drain(self, cycle: int) -> None:
        """Evict every resident line (end-of-simulation accounting)."""
        for entries in self._sets:
            for line in entries.values():
                self._observer.on_evict(line, cycle)
            entries.clear()

    # -- statistics --------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def resident_lines(self):
        """Iterate over all currently resident lines."""
        for entries in self._sets:
            yield from entries.values()
