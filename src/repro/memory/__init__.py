"""Memory hierarchy: set-associative caches, TLBs, MSHRs (Table 1).

L1I 32 KB / 2-way / 32 B lines (2 ports), L1D 64 KB / 4-way / 64 B lines
(2 ports), unified L2 2 MB / 4-way / 128 B lines (12-cycle access), main
memory 200 cycles; ITLB 128-entry 4-way and DTLB 256-entry 4-way with a
200-cycle miss penalty.

The data cache and DTLB accept an *observer* so the AVF engine can track
per-word ACE residency without entangling reliability accounting with the
timing model.
"""

from repro.memory.cache import Cache, CacheLine, CacheObserver, NullObserver
from repro.memory.tlb import Tlb, TlbEntry
from repro.memory.mshr import MshrFile
from repro.memory.hierarchy import MemoryHierarchy, DataAccessResult, FetchAccessResult

__all__ = [
    "Cache",
    "CacheLine",
    "CacheObserver",
    "NullObserver",
    "Tlb",
    "TlbEntry",
    "MshrFile",
    "MemoryHierarchy",
    "DataAccessResult",
    "FetchAccessResult",
]
