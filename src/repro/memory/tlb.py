"""Set-associative TLB with LRU replacement and AVF observation hooks.

An entry is ACE from fill until its last use: a particle strike on a
translation that will be consulted again yields a wrong physical address
(and hence wrong data) — but a strike on an entry that is never used again
before eviction is harmless.  The observer receives evictions (and the
end-of-run drain) so :mod:`repro.avf` can integrate those intervals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from repro.config import TlbConfig


class TlbEntry:
    """One resident translation."""

    __slots__ = ("vpn", "thread_id", "fill_cycle", "last_use_cycle", "uses")

    def __init__(self, vpn: int, thread_id: int, fill_cycle: int) -> None:
        self.vpn = vpn
        self.thread_id = thread_id
        self.fill_cycle = fill_cycle
        self.last_use_cycle = fill_cycle
        self.uses = 0


class TlbObserver(Protocol):
    def on_evict(self, entry: TlbEntry, cycle: int) -> None: ...


class Tlb:
    """A hardware TLB shared by all SMT contexts.

    Virtual page numbers already embed the per-thread address-space base
    (see :mod:`repro.workload.address_stream`), so threads contend for TLB
    capacity without aliasing, as in the paper's multiprogrammed setup.
    """

    def __init__(self, config: TlbConfig, observer: Optional[TlbObserver] = None) -> None:
        self.config = config
        self._page_shift = config.page_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self._observer = observer
        self._sets: List[Dict[int, TlbEntry]] = [dict() for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    def vpn_of(self, addr: int) -> int:
        return addr >> self._page_shift

    def _set_index(self, vpn: int) -> int:
        # Fibonacci hash, for the same reason as Cache._set_index: dense
        # synthetic regions at 2^32-multiple bases must spread over all sets.
        h = (vpn * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return (h >> 40) % self._num_sets

    def access(self, addr: int, cycle: int, thread_id: int) -> bool:
        """Translate ``addr``; returns True on a TLB hit.

        On a miss the translation is installed (the page walk's latency is
        charged by the hierarchy, not here).
        """
        vpn = self.vpn_of(addr)
        entries = self._sets[self._set_index(vpn)]
        entry = entries.get(vpn)
        hit = entry is not None
        if hit:
            self.hits += 1
            del entries[vpn]
            entries[vpn] = entry
        else:
            self.misses += 1
            if len(entries) >= self._assoc:
                victim = entries.pop(next(iter(entries)))
                if self._observer is not None:
                    self._observer.on_evict(victim, cycle)
            entry = TlbEntry(vpn, thread_id, cycle)
            entries[vpn] = entry
        entry.last_use_cycle = cycle
        entry.uses += 1
        return hit

    def drain(self, cycle: int) -> None:
        """Evict all entries (end-of-simulation accounting)."""
        for entries in self._sets:
            if self._observer is not None:
                for entry in entries.values():
                    self._observer.on_evict(entry, cycle)
            entries.clear()

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
