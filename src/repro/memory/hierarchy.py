"""Latency composition across IL1/DL1/L2/memory and the two TLBs.

The hierarchy installs missing lines immediately but returns the true fill
latency; an MSHR file remembers in-flight fills so later accesses to the
same line *merge* (they wait for the original fill instead of paying a new
memory round trip).  Line-fill timestamps passed to the content model use
the fill-completion cycle, so AVF residency starts when the data actually
arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import MachineConfig
from repro.memory.cache import Cache, CacheObserver
from repro.memory.mshr import MshrFile
from repro.memory.tlb import Tlb, TlbObserver


@dataclass(frozen=True)
class DataAccessResult:
    """Outcome of one load/store data access."""

    latency: int
    dl1_hit: bool
    l2_hit: bool      # only meaningful when the DL1 missed
    tlb_hit: bool

    @property
    def dl1_miss(self) -> bool:
        return not self.dl1_hit

    @property
    def l2_miss(self) -> bool:
        return self.dl1_miss and not self.l2_hit


@dataclass(frozen=True)
class FetchAccessResult:
    """Outcome of one instruction-fetch access."""

    latency: int
    il1_hit: bool
    l2_hit: bool
    tlb_hit: bool

    @property
    def blocks_fetch(self) -> bool:
        """True when the front end must stall this thread for ``latency`` cycles."""
        return self.latency > 1


class MemoryHierarchy:
    """The complete Table 1 memory system."""

    def __init__(self, config: MachineConfig,
                 dl1_observer: Optional[CacheObserver] = None,
                 dtlb_observer: Optional[TlbObserver] = None) -> None:
        self.config = config
        self.il1 = Cache(config.il1)
        self.dl1 = Cache(config.dl1, track_words=True, observer=dl1_observer)
        self.l2 = Cache(config.l2)
        self.itlb = Tlb(config.itlb)
        self.dtlb = Tlb(config.dtlb, observer=dtlb_observer)
        self._dl1_mshrs = MshrFile(config.dl1.mshrs)
        self._il1_mshrs = MshrFile(config.il1.mshrs)
        self._dl1_ports_used = 0
        self._cycle = 0

    # -- per-cycle plumbing ------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Reset per-cycle port arbitration state."""
        self._cycle = cycle
        self._dl1_ports_used = 0

    def dl1_port_available(self) -> bool:
        return self._dl1_ports_used < self.config.dl1.ports

    def claim_dl1_port(self) -> bool:
        """Reserve one DL1 port for this cycle; False when all ports are busy."""
        if not self.dl1_port_available():
            return False
        self._dl1_ports_used += 1
        return True

    # -- data side ---------------------------------------------------------------

    def data_access(self, addr: int, cycle: int, thread_id: int,
                    is_write: bool) -> DataAccessResult:
        """Access the data side for a load (``is_write=False``) or store."""
        latency = 0
        tlb_hit = self.dtlb.access(addr, cycle, thread_id)
        if not tlb_hit:
            latency += self.config.dtlb.miss_latency

        line_addr = self.dl1.line_address(addr)
        merged_ready = self._dl1_mshrs.lookup(line_addr, cycle)
        if merged_ready is not None and merged_ready > cycle:
            # Secondary miss: wait for the in-flight fill, then hit.
            latency += (merged_ready - cycle) + self.config.dl1.hit_latency
            self.dl1.access(addr, merged_ready, thread_id, is_write)
            return DataAccessResult(latency, dl1_hit=False, l2_hit=True,
                                    tlb_hit=tlb_hit)

        if self.dl1.probe(addr):
            latency += self.config.dl1.hit_latency
            self.dl1.access(addr, cycle + latency, thread_id, is_write)
            return DataAccessResult(latency, dl1_hit=True, l2_hit=True, tlb_hit=tlb_hit)

        # Primary DL1 miss: go to the unified L2 (and memory beyond).
        l2_hit, fill_latency = self._l2_fill_latency(addr, cycle, thread_id)
        latency += self.config.dl1.hit_latency + fill_latency
        ready = cycle + latency
        self._dl1_mshrs.allocate(line_addr, ready, cycle)
        _, _, evicted = self.dl1.access(addr, ready, thread_id, is_write)
        if evicted is not None and evicted.dirty:
            # Writeback through a store buffer: charges no latency here.
            wb_addr = evicted.tag << (self.config.dl1.line_bytes.bit_length() - 1)
            self.l2.access(wb_addr, cycle, evicted.thread_id, is_write=True)
        return DataAccessResult(latency, dl1_hit=False, l2_hit=l2_hit, tlb_hit=tlb_hit)

    def _l2_fill_latency(self, addr: int, cycle: int, thread_id: int) -> tuple[bool, int]:
        """Latency beyond the L1 for a line fill; installs into the L2."""
        l2_hit = self.l2.probe(addr)
        self.l2.access(addr, cycle, thread_id, is_write=False)
        if l2_hit:
            return True, self.config.l2.hit_latency
        return False, self.config.l2.hit_latency + self.config.memory_latency

    # -- instruction side ----------------------------------------------------------

    def fetch_access(self, pc: int, cycle: int, thread_id: int) -> FetchAccessResult:
        """Access the instruction side for one fetch block at ``pc``."""
        latency = 0
        tlb_hit = self.itlb.access(pc, cycle, thread_id)
        if not tlb_hit:
            latency += self.config.itlb.miss_latency

        line_addr = self.il1.line_address(pc)
        merged_ready = self._il1_mshrs.lookup(line_addr, cycle)
        if merged_ready is not None and merged_ready > cycle:
            latency += (merged_ready - cycle) + self.config.il1.hit_latency
            self.il1.access(pc, merged_ready, thread_id, is_write=False)
            return FetchAccessResult(latency, il1_hit=False, l2_hit=True, tlb_hit=tlb_hit)

        if self.il1.probe(pc):
            latency += self.config.il1.hit_latency
            self.il1.access(pc, cycle + latency, thread_id, is_write=False)
            return FetchAccessResult(latency, il1_hit=True, l2_hit=True, tlb_hit=tlb_hit)

        l2_hit, fill_latency = self._l2_fill_latency(pc, cycle, thread_id)
        latency += self.config.il1.hit_latency + fill_latency
        ready = cycle + latency
        self._il1_mshrs.allocate(line_addr, ready, cycle)
        self.il1.access(pc, ready, thread_id, is_write=False)
        return FetchAccessResult(latency, il1_hit=False, l2_hit=l2_hit, tlb_hit=tlb_hit)

    # -- lifecycle -----------------------------------------------------------------

    def reset_statistics(self) -> None:
        """Zero hit/miss counters and in-flight miss state (post-warmup)."""
        for cache in (self.il1, self.dl1, self.l2):
            cache.hits = cache.misses = cache.evictions = cache.writebacks = 0
        for tlb in (self.itlb, self.dtlb):
            tlb.hits = tlb.misses = 0
        self._dl1_mshrs.clear()
        self._il1_mshrs.clear()

    def drain(self, cycle: int) -> None:
        """Flush observed structures at end of run so AVF intervals close."""
        self.dl1.drain(cycle)
        self.dtlb.drain(cycle)
