"""The per-run auditor: invariant scheduling plus telemetry, in one object.

``SMTCore`` owns one :class:`SimAuditor` when the run was configured with
``SimConfig(check_invariants=N)`` and/or a ``trace_out`` path.  The auditor
is strictly observation-only: it reads pipeline and ledger state, never
mutates it, so an audited run commits the same instructions in the same
cycles and reports byte-identical AVF numbers to an unaudited one (a
differential test asserts this).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.audit.invariants import InvariantChecker, audit_report
from repro.audit.observe import OccupancyTimeline, StageCounters, TraceWriter
from repro.errors import InvariantViolation

#: Sampling interval used when only tracing (no invariant checking) is on.
DEFAULT_SAMPLE_INTERVAL = 100


class SimAuditor:
    """Runs scheduled invariant audits and records telemetry for one core."""

    def __init__(self, check_every: int = 0,
                 trace_path: Optional[Union[str, Path]] = None,
                 checker: Optional[InvariantChecker] = None,
                 trace_writer: Optional[TraceWriter] = None) -> None:
        if checker is not None:
            self.checker: Optional[InvariantChecker] = checker
        else:
            self.checker = InvariantChecker(check_every) if check_every > 0 else None
        self.sample_every = (self.checker.every if self.checker is not None
                             else DEFAULT_SAMPLE_INTERVAL)
        self.timeline = OccupancyTimeline()
        if trace_writer is not None:
            self.trace: Optional[TraceWriter] = trace_writer
        else:
            self.trace = TraceWriter(trace_path) if trace_path is not None else None
        self.counters = StageCounters()
        self.finalized = False

    # -- per-cycle hook ------------------------------------------------------------

    def on_cycle(self, core) -> None:
        """Called by the core at the end of every simulated cycle."""
        if core.cycle % self.sample_every == 0:
            snapshot = self.timeline.sample(core)
            self.counters = StageCounters.from_core(core)
            if self.trace is not None:
                self.trace.emit("sample", core.cycle, occupancy=snapshot,
                                counters=self.counters.to_payload())
        if self.checker is not None:
            self._checked(core, final=False)

    def on_finalize(self, core) -> None:
        """Probe-bus lifecycle hook: the run drained, run the final audit."""
        self.finalize(core)

    # -- end of run ----------------------------------------------------------------

    def finalize(self, core) -> None:
        """Final audit after drain: every ledger is closed, no slack left."""
        if self.finalized:
            return
        self.finalized = True
        self.counters = StageCounters.from_core(core)
        self.timeline.sample(core)
        try:
            if self.checker is not None:
                self._checked(core, final=True)
        finally:
            if self.trace is not None:
                self.trace.emit("summary", core.cycle,
                                counters=self.counters.to_payload(),
                                peak_occupancy=dict(self.timeline.peaks),
                                invariant_checks=self.checks_run)
                self.trace.close()

    def audit_final_report(self, report) -> None:
        """Validate the reduced AVF report (thread attribution, bounds)."""
        if self.checker is not None:
            audit_report(report)

    def _checked(self, core, final: bool) -> None:
        try:
            if final:
                self.checker.check(core, final=True)
            else:
                self.checker.maybe_check(core)
        except InvariantViolation as violation:
            if self.trace is not None:
                self.trace.emit("violation", violation.cycle,
                                invariant=violation.invariant,
                                structure=violation.structure,
                                delta=violation.delta,
                                message=str(violation))
                self.trace.close()
            raise

    # -- reporting -----------------------------------------------------------------

    @property
    def checks_run(self) -> int:
        return self.checker.checks_run if self.checker is not None else 0

    def summary_payload(self) -> Dict[str, object]:
        """JSON-safe audit record attached to :class:`SimResult`."""
        payload: Dict[str, object] = {
            "invariant_checks": self.checks_run,
            "check_interval": (self.checker.every
                               if self.checker is not None else 0),
            "violations": 0,  # a violation raises; a report implies none
            "stage_counters": self.counters.to_payload(),
            "peak_occupancy": dict(self.timeline.peaks),
        }
        if self.trace is not None:
            payload["trace_path"] = str(self.trace.path)
            payload["trace_events"] = self.trace.events_written
        return payload
