"""Runtime invariant audits and structured observability for the simulator.

Enable with ``SimConfig(check_invariants=N)`` (audit every N cycles) or the
CLI's ``--check-invariants[=N]``; add ``--trace-out events.jsonl`` for the
JSONL event trace.  See :mod:`repro.audit.invariants` for the conservation
laws enforced and docs/reproduction-guide.md ("Auditing & tracing") for the
operator view.
"""

from repro.audit.auditor import SimAuditor
from repro.audit.invariants import (
    DEFAULT_CHECKS,
    FINAL_CHECKS,
    InvariantChecker,
    audit_report,
    check_commit_agreement,
    check_interval_replay,
    check_ledger_conservation,
    check_occupancy,
)
from repro.audit.observe import (
    OccupancyTimeline,
    StageCounters,
    TraceWriter,
    occupancy_snapshot,
)
from repro.errors import InvariantViolation

__all__ = [
    "DEFAULT_CHECKS",
    "FINAL_CHECKS",
    "InvariantChecker",
    "InvariantViolation",
    "OccupancyTimeline",
    "SimAuditor",
    "StageCounters",
    "TraceWriter",
    "audit_report",
    "check_commit_agreement",
    "check_interval_replay",
    "check_ledger_conservation",
    "check_occupancy",
    "occupancy_snapshot",
]
