"""Structured observability: stage counters, occupancy timelines, JSONL trace.

The audit layer's second half is passive telemetry: per-stage instruction
counters snapshotted from the pipeline, per-structure occupancy sampled on
the audit interval, and an optional newline-delimited-JSON event trace that
campaigns and figure scripts can post-process without re-running anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union


@dataclass
class StageCounters:
    """Cumulative per-stage instruction counts at one point in time."""

    fetched: int = 0
    wrong_path_fetched: int = 0
    dispatched: int = 0
    issued: int = 0
    writebacks: int = 0
    committed: int = 0
    mispredict_squashes: int = 0

    @classmethod
    def from_core(cls, core) -> "StageCounters":
        return cls(
            fetched=sum(t.fetched for t in core.threads),
            wrong_path_fetched=sum(t.wrong_path_fetched for t in core.threads),
            dispatched=core.dispatched_total,
            issued=core.fu_pool.issued_ops,
            writebacks=core.writebacks_total,
            committed=core.total_committed,
            mispredict_squashes=core.mispredict_squashes,
        )

    def to_payload(self) -> Dict[str, int]:
        return {
            "fetched": self.fetched,
            "wrong_path_fetched": self.wrong_path_fetched,
            "dispatched": self.dispatched,
            "issued": self.issued,
            "writebacks": self.writebacks,
            "committed": self.committed,
            "mispredict_squashes": self.mispredict_squashes,
        }


def occupancy_snapshot(core) -> Dict[str, int]:
    """Live entry counts of every occupancy-tracked structure."""
    snapshot = {
        "IQ": len(core.issue_queue),
        "Reg": core.regfile.allocated_count(),
        "FU": core.fu_pool.busy_count,
    }
    for t in core.threads:
        snapshot[f"ROB[t{t.id}]"] = len(t.rob)
        snapshot[f"LSQ[t{t.id}]"] = len(t.lsq)
    return snapshot


@dataclass
class OccupancyTimeline:
    """Sampled per-structure occupancy over the run.

    ``samples`` holds ``(cycle, {structure: entries})`` pairs at the audit
    interval; ``peaks`` is the running per-structure maximum (cheap enough
    to serialise with every result).
    """

    samples: List[Tuple[int, Dict[str, int]]] = field(default_factory=list)
    peaks: Dict[str, int] = field(default_factory=dict)

    def sample(self, core) -> Dict[str, int]:
        snapshot = occupancy_snapshot(core)
        self.samples.append((core.cycle, snapshot))
        for name, value in snapshot.items():
            if value > self.peaks.get(name, 0):
                self.peaks[name] = value
        return snapshot


class TraceWriter:
    """Append-only JSONL event sink (one JSON object per line).

    Events carry at least ``kind`` and ``cycle``; everything else is
    event-specific.  Keys are sorted so traces diff cleanly across runs.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        self.events_written = 0

    def emit(self, kind: str, cycle: int, **fields: object) -> None:
        if self._fh is None:
            return
        record = {"kind": kind, "cycle": cycle, **fields}
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def on_finalize(self, core) -> None:
        """Probe-bus lifecycle hook: flush and close the sink (idempotent)."""
        self.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
