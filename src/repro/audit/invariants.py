"""Runtime conservation-law audits over the pipeline and the AVF engine.

Every AVF number the simulator reports reduces to entry-cycle ledgers that
must obey conservation laws the normal fast path never verifies:

* structure occupancy never exceeds capacity (ROB, LSQ, IQ, register file);
* per-account ledger totals never exceed ``capacity x elapsed cycles`` —
  equivalently, the implied idle time is non-negative, so
  ``ACE + un-ACE + idle == capacity x cycles`` holds exactly;
* the summed ledgers match an independent replay of the recorded residency
  intervals (when ``SimConfig(record_intervals=True)``);
* per-thread AVF contributions are consistent with the structure AVF;
* committed-instruction counts agree between the pipeline and the metrics.

Checks are plain functions ``check(core, cycle)`` raising
:class:`InvariantViolation` on drift, so campaigns and tests can register
their own.  :class:`InvariantChecker` schedules them every N cycles.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.avf.structures import (PRIVATE_STRUCTURES, PROBE_STRUCTURES,
                                  SHARED_STRUCTURES, Structure)
from repro.errors import InvariantViolation

#: One audit: raises InvariantViolation when its law does not hold.
Check = Callable[["SMTCore", int], None]  # noqa: F821  (forward ref)

#: Absolute slack for float ledger comparisons (sums of many small adds).
_ABS_EPS = 1e-6
#: Relative slack for large ledger totals.
_REL_EPS = 1e-9


def _tolerance(budget: float) -> float:
    return _ABS_EPS + _REL_EPS * abs(budget)


def check_occupancy(core, cycle: int) -> None:
    """No structure ever holds more entries than its capacity."""
    iq = core.issue_queue
    if len(iq) > iq.capacity:
        raise InvariantViolation("occupancy<=capacity", "IQ", cycle,
                                 len(iq) - iq.capacity,
                                 f"{len(iq)} entries in a {iq.capacity}-entry queue")
    per_thread = sum(iq.thread_count(t.id) for t in core.threads)
    if per_thread != len(iq):
        raise InvariantViolation(
            "iq-per-thread-counts", "IQ", cycle, per_thread - len(iq),
            f"per-thread counts sum to {per_thread}, queue holds {len(iq)}")
    for t in core.threads:
        if len(t.rob) > t.rob.capacity:
            raise InvariantViolation(
                "occupancy<=capacity", f"ROB[t{t.id}]", cycle,
                len(t.rob) - t.rob.capacity)
        if len(t.lsq) > t.lsq.capacity:
            raise InvariantViolation(
                "occupancy<=capacity", f"LSQ[t{t.id}]", cycle,
                len(t.lsq) - t.lsq.capacity)
    rf = core.regfile
    pool = rf.int_regs + rf.fp_regs
    accounted = rf.allocated_count() + rf.free_count(False) + rf.free_count(True)
    if accounted != pool:
        raise InvariantViolation(
            "regfile-pool-conservation", "Reg", cycle, accounted - pool,
            f"allocated + free = {accounted}, pool holds {pool} registers")


def check_ledger_conservation(core, cycle: int) -> None:
    """ACE + un-ACE + idle == capacity x elapsed cycles, per account.

    Residency is accrued with one-cycle granularity and the FU ledger counts
    the in-progress cycle as ``[cycle, cycle + 1)``, so the budget uses
    ``cycle + 1`` — an over-count must exceed that one-cycle slack (as any
    real double-count quickly does) to fire mid-run; the end-of-run check
    has no such slack left to hide in.
    """
    for structure, tid, account in core.engine.iter_accounts():
        name = account.name
        elapsed = max(0, (cycle + 1) - account.window_start)
        budget = account.capacity * elapsed
        occupied = account.occupied_cycles()
        if occupied > budget + _tolerance(budget):
            raise InvariantViolation(
                "ledger-conservation", name, cycle, occupied - budget,
                f"{occupied:.3f} occupied entry-cycles exceed capacity "
                f"{account.capacity} x {elapsed} elapsed cycles")
        for ledger_name, ledger in (("ACE", account.ace_cycles),
                                    ("un-ACE", account.unace_cycles)):
            for thread_id, value in ledger.items():
                if value < -_ABS_EPS:
                    raise InvariantViolation(
                        "ledger-non-negative", name, cycle, value,
                        f"{ledger_name} ledger of thread {thread_id} is negative")


def check_commit_agreement(core, cycle: int) -> None:
    """Pipeline and per-thread committed-instruction counts agree."""
    per_thread = sum(t.committed for t in core.threads)
    if per_thread != core.total_committed:
        raise InvariantViolation(
            "commit-agreement", "pipeline", cycle,
            per_thread - core.total_committed,
            f"threads committed {per_thread}, core counted {core.total_committed}")


def check_interval_replay(core, cycle: int) -> None:
    """Summed ledgers match an independent replay of the recorded intervals.

    Two interval sources are replayed.  The probe bus's
    :class:`~repro.instrument.recorder.IntervalRecorder` (attached when
    ``SimConfig(record_intervals=True)``) covers every bus-fed structure;
    account-level logs cover ledgers driven directly with
    ``add_interval(record_intervals=True)`` in unit tests.  Cache/TLB
    observers record aggregate samples, not intervals, and are skipped in
    both.  A double-counted ledger entry shows up here exactly: the
    replayed sum no longer matches.  Cost is proportional to the number of
    recorded intervals, so the scheduler runs this only on the final check.
    """
    for structure, tid, account in core.engine.iter_accounts():
        replayed = account.replay_totals()
        if replayed is None:
            continue
        _compare_replay(account, replayed,
                        set(account.ace_cycles) | set(account.unace_cycles)
                        | set(replayed[0]) | set(replayed[1]), cycle)
    recorder = getattr(getattr(core, "instruments", None), "recorder", None)
    if recorder is None:
        return
    replay_by_structure = {s: recorder.replay_totals(s)
                           for s in PROBE_STRUCTURES}
    for structure, tid, account in core.engine.iter_accounts():
        if structure not in replay_by_structure:
            continue
        replayed = replay_by_structure[structure]
        if tid is None:
            thread_ids = (set(account.ace_cycles) | set(account.unace_cycles)
                          | set(replayed[0]) | set(replayed[1]))
        else:
            thread_ids = {tid}
        _compare_replay(account, replayed, thread_ids, cycle)


def _compare_replay(account, replayed, thread_ids: Iterable[int],
                    cycle: int) -> None:
    """Raise unless the account's ledgers equal the replayed per-thread sums."""
    ace_sums, unace_sums = replayed
    for ledger_name, ledger, replay in (
            ("ACE", account.ace_cycles, ace_sums),
            ("un-ACE", account.unace_cycles, unace_sums)):
        for thread_id in thread_ids:
            recorded = ledger.get(thread_id, 0.0)
            independent = replay.get(thread_id, 0.0)
            if not math.isclose(recorded, independent,
                                rel_tol=_REL_EPS,
                                abs_tol=_tolerance(independent)):
                raise InvariantViolation(
                    "interval-replay", account.name, cycle,
                    recorded - independent,
                    f"{ledger_name} ledger of thread {thread_id} holds "
                    f"{recorded:.3f} entry-cycles, interval replay "
                    f"yields {independent:.3f}")


def audit_report(report) -> None:
    """Validate a finished :class:`~repro.avf.report.AvfReport`.

    Checks that every AVF and utilisation lies in [0, 1], that AVF never
    exceeds utilisation (ACE residency is a subset of occupancy), and that
    per-thread contributions are consistent with the structure AVF: they sum
    to it for shared structures and average to it for private ones (modulo
    the clamp at 1.0, which can only lower the reported structure value).
    """
    cycle = report.cycles
    for structure, avf in report.avf.items():
        name = structure.value
        util = report.utilization.get(structure, 0.0)
        if not 0.0 <= avf <= 1.0:
            raise InvariantViolation("avf-in-unit-interval", name, cycle, avf)
        if not 0.0 <= util <= 1.0:
            raise InvariantViolation("utilization-in-unit-interval", name,
                                     cycle, util)
        if avf > util + _tolerance(util):
            raise InvariantViolation(
                "avf<=utilization", name, cycle, avf - util,
                f"AVF {avf:.6f} exceeds utilisation {util:.6f}")
        per_thread = report.thread_avf.get(structure)
        if not per_thread:
            continue
        clamped = any(v >= 1.0 for v in per_thread.values())
        if structure in SHARED_STRUCTURES:
            total = sum(per_thread.values())
            # Clamping only ever lowers values, so an unclamped sum must
            # reproduce the structure AVF exactly (modulo float rounding)
            # and a clamped one may only fall below it.
            if total > 1.0 + _tolerance(1.0) and avf < 1.0:
                raise InvariantViolation(
                    "thread-avf-attribution", name, cycle, total - avf,
                    f"thread contributions sum to {total:.6f} with structure "
                    f"AVF {avf:.6f}")
            if not clamped and avf < 1.0 and not math.isclose(
                    total, avf, rel_tol=_REL_EPS, abs_tol=_tolerance(avf)):
                raise InvariantViolation(
                    "thread-avf-attribution", name, cycle, total - avf,
                    f"thread contributions sum to {total:.6f}, structure "
                    f"AVF is {avf:.6f}")
        elif structure in PRIVATE_STRUCTURES:
            mean = sum(per_thread.values()) / len(per_thread)
            if not math.isclose(mean, avf, rel_tol=_REL_EPS,
                                abs_tol=_tolerance(avf)):
                raise InvariantViolation(
                    "thread-avf-attribution", name, cycle, mean - avf,
                    f"per-context AVFs average to {mean:.6f}, structure "
                    f"AVF is {avf:.6f}")


#: Cheap checks run at every scheduled audit point.
DEFAULT_CHECKS: Tuple[Check, ...] = (
    check_occupancy,
    check_ledger_conservation,
    check_commit_agreement,
)

#: Additional checks run once, at end of simulation (cost ~ run length).
FINAL_CHECKS: Tuple[Check, ...] = (check_interval_replay,)


class InvariantChecker:
    """Schedules audits every ``every`` cycles over a running core.

    Pluggable: pass extra ``checks`` (run each audit point) or
    ``final_checks`` (run once, after drain).  Violations raise — the
    simulation stops at the first inconsistency with a cycle-exact report —
    so a completed run's ``checks_run`` count certifies a clean audit trail.
    """

    def __init__(self, every: int = 1,
                 checks: Optional[Sequence[Check]] = None,
                 final_checks: Optional[Sequence[Check]] = None) -> None:
        if every < 1:
            raise ValueError("check interval must be >= 1")
        self.every = every
        self.checks: Tuple[Check, ...] = tuple(checks or DEFAULT_CHECKS)
        self.final_checks: Tuple[Check, ...] = tuple(
            final_checks if final_checks is not None else FINAL_CHECKS)
        self.checks_run = 0
        self.last_checked_cycle = -1

    def maybe_check(self, core) -> None:
        """Run the periodic checks when the core's cycle hits the interval."""
        if core.cycle % self.every == 0:
            self.check(core)

    def check(self, core, final: bool = False) -> None:
        cycle = core.cycle
        for check in self.checks:
            check(core, cycle)
        if final:
            for check in self.final_checks:
                check(core, cycle)
        self.checks_run += 1
        self.last_checked_cycle = cycle
