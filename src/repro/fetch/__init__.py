"""SMT instruction fetch policies (paper Section 4.3).

The baseline is **ICOUNT** (Tullsen et al., ISCA 1996): fetch priority to
the thread with the fewest in-flight front-end/IQ instructions.  The five
advanced policies differ in how they react to long-latency loads:

* **FLUSH** (Tullsen & Brown, MICRO 2001) squashes everything a thread
  fetched after an L2-missing load and gates its fetch until the miss
  returns — freeing shared resources *and* ACE-bit residency.
* **STALL** (same paper) only gates fetch on an L2 miss, always letting at
  least one thread proceed.
* **DG** / **PDG** (El-Moursy & Albonesi, HPCA 2003) gate fetch once a
  thread has several outstanding L1-data misses; PDG predicts the misses at
  fetch to shave the detection delay.
* **DWARN** (Cazorla et al., IPDPS 2004) demotes — rather than gates —
  threads with outstanding data-cache misses.
"""

from repro.fetch.base import FetchPolicy
from repro.fetch.icount import IcountPolicy
from repro.fetch.stall import StallPolicy
from repro.fetch.flush import FlushPolicy
from repro.fetch.flushp import PredictiveFlushPolicy
from repro.fetch.dg import DataGatingPolicy
from repro.fetch.pdg import PredictiveDataGatingPolicy
from repro.fetch.dwarn import DcacheWarnPolicy
from repro.fetch.raft import ReliabilityAwareThrottlePolicy
from repro.fetch.registry import (
    EXTENSION_POLICY_NAMES,
    POLICY_NAMES,
    create_policy,
)

__all__ = [
    "FetchPolicy",
    "IcountPolicy",
    "StallPolicy",
    "FlushPolicy",
    "PredictiveFlushPolicy",
    "DataGatingPolicy",
    "PredictiveDataGatingPolicy",
    "DcacheWarnPolicy",
    "ReliabilityAwareThrottlePolicy",
    "POLICY_NAMES",
    "EXTENSION_POLICY_NAMES",
    "create_policy",
]
