"""Fetch-policy interface.

A policy sees the core each cycle and returns the ordered list of threads
allowed to fetch; it also receives the pipeline events the published
policies key on (L1/L2 data misses and their resolution, instruction fetch).
Policies are stateful and must be instantiated fresh per simulation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List

from repro.isa.instruction import DynInstr

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore


class FetchPolicy(ABC):
    """Decides, each cycle, which threads may fetch and in what order."""

    #: Short name used in reports and the registry.
    name: str = "base"

    @abstractmethod
    def priorities(self, core: "SMTCore") -> List[int]:
        """Ordered thread ids eligible to fetch this cycle (best first)."""

    # -- event hooks (default: ignore) ---------------------------------------------

    def on_fetch(self, core: "SMTCore", instr: DynInstr) -> None:
        """A correct- or wrong-path instruction entered the front end."""

    def on_l2_miss(self, core: "SMTCore", load: DynInstr) -> None:
        """A load was discovered to miss in the L2."""

    def on_load_resolved(self, core: "SMTCore", load: DynInstr) -> None:
        """A load's data arrived (its miss counters were just released)."""

    def on_squash(self, core: "SMTCore", instr: DynInstr) -> None:
        """A fetched instruction was squashed (it may never execute)."""

    # -- shared helper ----------------------------------------------------------------

    @staticmethod
    def icount_order(core: "SMTCore", thread_ids) -> List[int]:
        """ICOUNT ordering: fewest in-flight front-end/IQ instructions first."""
        return sorted(thread_ids, key=lambda tid: (core.in_flight_count(tid), tid))
