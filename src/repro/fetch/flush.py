"""FLUSH: squash past an L2-missing load and gate the thread's fetch.

Tullsen & Brown (MICRO 2001).  On detecting an L2 miss, every instruction
the offending thread fetched *after* the missing load is squashed (we flush
from the first instruction following the load, the variant the paper
implements) and the thread's fetch is gated until the miss returns.  The
freed IQ/ROB/LSQ entries and rename registers go to other threads — and,
centrally for this paper, hundreds of cycles of ACE-bit residency are
eliminated, which is why FLUSH slashes IQ/ROB/LSQ AVF in Figure 6.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.fetch.base import FetchPolicy
from repro.isa.instruction import DynInstr

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore


class FlushPolicy(FetchPolicy):
    name = "FLUSH"

    def __init__(self) -> None:
        self._pending: Dict[int, DynInstr] = {}  # thread -> gating load
        self.flushes = 0

    def priorities(self, core: "SMTCore") -> List[int]:
        candidates = [tid for tid in core.fetchable_threads() if tid not in self._pending]
        if candidates:
            return self.icount_order(core, candidates)
        all_threads = core.fetchable_threads()
        return self.icount_order(core, all_threads)[:1]

    def on_l2_miss(self, core: "SMTCore", load: DynInstr) -> None:
        tid = load.thread_id
        if tid in self._pending or load.wrong_path or load.squashed:
            return
        core.squash_after(load)
        self._pending[tid] = load
        self.flushes += 1

    def on_load_resolved(self, core: "SMTCore", load: DynInstr) -> None:
        tid = load.thread_id
        if self._pending.get(tid) is load:
            del self._pending[tid]
