"""PDG (predictive data gating): gate on *predicted* L1-data misses.

El-Moursy & Albonesi (HPCA 2003).  DG only reacts once a load has executed
and missed — several cycles after fetch.  PDG predicts, at fetch time, which
loads will miss (a per-thread table of two-bit saturating counters indexed
by load PC, trained on actual outcomes) and counts a predicted-missing load
as an outstanding miss from the moment it is fetched, closing DG's
detection-delay window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from repro.fetch.base import FetchPolicy
from repro.isa.instruction import DynInstr

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore

_PREDICT_MISS_THRESHOLD = 2
_COUNTER_MAX = 3


class PredictiveDataGatingPolicy(FetchPolicy):
    name = "PDG"

    def __init__(self, threshold: int = 2, table_entries: int = 512) -> None:
        self.threshold = threshold
        self._entries = table_entries
        self._tables: Dict[int, bytearray] = {}   # thread -> counter table
        self._predicted: Dict[int, int] = {}      # thread -> predicted-miss count
        self._flagged: Set[int] = set()           # id(instr) of counted loads

    def _table(self, tid: int) -> bytearray:
        table = self._tables.get(tid)
        if table is None:
            table = bytearray(self._entries)
            self._tables[tid] = table
        return table

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self._entries

    def priorities(self, core: "SMTCore") -> List[int]:
        clear = [tid for tid in core.fetchable_threads()
                 if self._predicted.get(tid, 0) < self.threshold]
        return self.icount_order(core, clear)

    def on_fetch(self, core: "SMTCore", instr: DynInstr) -> None:
        if not instr.is_load or id(instr) in self._flagged:
            return
        table = self._table(instr.thread_id)
        if table[self._index(instr.pc)] >= _PREDICT_MISS_THRESHOLD:
            self._predicted[instr.thread_id] = self._predicted.get(instr.thread_id, 0) + 1
            self._flagged.add(id(instr))

    def on_load_resolved(self, core: "SMTCore", load: DynInstr) -> None:
        table = self._table(load.thread_id)
        idx = self._index(load.pc)
        if load.dl1_missed:
            table[idx] = min(table[idx] + 1, _COUNTER_MAX)
        elif table[idx] > 0:
            table[idx] -= 1
        self._unflag(load)

    def on_squash(self, core: "SMTCore", instr: DynInstr) -> None:
        # A flagged load that dies before executing will never resolve; the
        # gate count must be released here or the thread stays gated forever.
        self._unflag(instr)

    def _unflag(self, instr: DynInstr) -> None:
        if id(instr) in self._flagged:
            self._flagged.discard(id(instr))
            self._predicted[instr.thread_id] -= 1
