"""ICOUNT: the baseline fetch policy (Tullsen et al., ISCA 1996)."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.fetch.base import FetchPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore


class IcountPolicy(FetchPolicy):
    """Highest priority to the thread with the fewest in-flight instructions.

    Counting instructions between fetch and issue self-balances the machine:
    a thread clogging the front end or the IQ automatically loses fetch
    bandwidth to faster-moving threads.
    """

    name = "ICOUNT"

    def priorities(self, core: "SMTCore") -> List[int]:
        return self.icount_order(core, core.fetchable_threads())
