"""FLUSHP: FLUSH enhanced with L2-miss prediction (paper Section 5).

The paper's closing analysis observes FLUSH's limitation: it reacts only
once the L2 miss is *detected*, hundreds of ACE bits after the offending
load entered the pipeline.  "If the L2 cache misses can be predicted when
the offending instruction enters the pipeline, fetch can be stalled
immediately to ensure that no ACE bits are brought into pipeline."

FLUSHP implements that proposal: a per-thread PC-indexed two-bit-counter
predictor is trained on each load's actual L2 outcome; when a fetched load
is predicted to miss the L2, the thread's fetch gates *at fetch time* —
before the dependent ACE bits exist — and reopens when the load resolves.
Confirmed L2 misses still trigger the normal FLUSH squash, covering the
predictor's misses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set

from repro.fetch.flush import FlushPolicy
from repro.isa.instruction import DynInstr

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore

_PREDICT_MISS_THRESHOLD = 2
_COUNTER_MAX = 3


class PredictiveFlushPolicy(FlushPolicy):
    name = "FLUSHP"

    def __init__(self, table_entries: int = 512) -> None:
        super().__init__()
        self._entries = table_entries
        self._tables: Dict[int, bytearray] = {}
        self._gating: Dict[int, Set[int]] = {}   # thread -> {id(load), ...}
        self.predicted_gates = 0

    def _table(self, tid: int) -> bytearray:
        table = self._tables.get(tid)
        if table is None:
            table = bytearray(self._entries)
            self._tables[tid] = table
        return table

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self._entries

    def priorities(self, core: "SMTCore"):
        candidates = [
            tid for tid in core.fetchable_threads()
            if tid not in self._pending and not self._gating.get(tid)
        ]
        if candidates:
            return self.icount_order(core, candidates)
        return self.icount_order(core, core.fetchable_threads())[:1]

    def on_fetch(self, core: "SMTCore", instr: DynInstr) -> None:
        if not instr.is_load or instr.wrong_path:
            return
        table = self._table(instr.thread_id)
        if table[self._index(instr.pc)] >= _PREDICT_MISS_THRESHOLD:
            self._gating.setdefault(instr.thread_id, set()).add(id(instr))
            self.predicted_gates += 1

    def on_load_resolved(self, core: "SMTCore", load: DynInstr) -> None:
        super().on_load_resolved(core, load)
        table = self._table(load.thread_id)
        idx = self._index(load.pc)
        if load.l2_missed:
            table[idx] = min(table[idx] + 1, _COUNTER_MAX)
        elif table[idx] > 0:
            table[idx] -= 1
        self._ungate(load)

    def on_squash(self, core: "SMTCore", instr: DynInstr) -> None:
        super().on_squash(core, instr)
        self._ungate(instr)

    def _ungate(self, instr: DynInstr) -> None:
        gated = self._gating.get(instr.thread_id)
        if gated is not None:
            gated.discard(id(instr))
