"""STALL: gate fetch for threads with outstanding L2 misses.

Tullsen & Brown (MICRO 2001): a thread that missed in the L2 will only clog
shared resources for the next few hundred cycles, so stop fetching for it —
but always let at least one thread fetch so the machine cannot idle when
every thread is waiting on memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.fetch.base import FetchPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore


class StallPolicy(FetchPolicy):
    name = "STALL"

    def priorities(self, core: "SMTCore") -> List[int]:
        candidates = core.fetchable_threads()
        clear = [tid for tid in candidates if core.thread(tid).outstanding_l2 == 0]
        if clear:
            return self.icount_order(core, clear)
        # All threads are missing: let the best-positioned one proceed anyway.
        ordered = self.icount_order(core, candidates)
        return ordered[:1]
