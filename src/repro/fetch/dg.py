"""DG (data gating): stop fetching on outstanding L1-data misses.

El-Moursy & Albonesi (HPCA 2003): once a thread has more than a threshold
of outstanding L1 data-cache misses, its fetch is gated until enough of
them resolve.  Reacting to L1 (rather than L2) misses makes DG quicker to
trigger but blind to how severe the miss turns out to be — the limitation
the paper uses to explain why FLUSH reduces AVF more.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.fetch.base import FetchPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore


class DataGatingPolicy(FetchPolicy):
    name = "DG"

    def __init__(self, threshold: int = 2) -> None:
        self.threshold = threshold

    def priorities(self, core: "SMTCore") -> List[int]:
        clear = [tid for tid in core.fetchable_threads()
                 if core.thread(tid).outstanding_l1d < self.threshold]
        return self.icount_order(core, clear)
