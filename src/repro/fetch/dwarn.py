"""DWARN (DCache Warn): demote, don't gate, on data-cache misses.

Cazorla et al. (IPDPS 2004): threads with outstanding data-cache misses
keep fetching but at reduced priority.  The thread still makes progress —
which is why DWARN preserves fairness (harmonic IPC) better than gating
policies — at the cost of letting some long-latency ACE bits into the
pipeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.fetch.base import FetchPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore


class DcacheWarnPolicy(FetchPolicy):
    name = "DWARN"

    def priorities(self, core: "SMTCore") -> List[int]:
        return sorted(
            core.fetchable_threads(),
            key=lambda tid: (
                1 if core.thread(tid).outstanding_l1d > 0 else 0,
                core.in_flight_count(tid),
                tid,
            ),
        )
