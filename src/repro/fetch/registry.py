"""Fetch-policy registry: create policies by name."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigError
from repro.fetch.base import FetchPolicy
from repro.fetch.dg import DataGatingPolicy
from repro.fetch.dwarn import DcacheWarnPolicy
from repro.fetch.flush import FlushPolicy
from repro.fetch.flushp import PredictiveFlushPolicy
from repro.fetch.icount import IcountPolicy
from repro.fetch.pdg import PredictiveDataGatingPolicy
from repro.fetch.raft import ReliabilityAwareThrottlePolicy
from repro.fetch.stall import StallPolicy

_FACTORIES: Dict[str, Callable[[], FetchPolicy]] = {
    "ICOUNT": IcountPolicy,
    "STALL": StallPolicy,
    "FLUSH": FlushPolicy,
    "DG": DataGatingPolicy,
    "PDG": PredictiveDataGatingPolicy,
    "DWARN": DcacheWarnPolicy,
    "FLUSHP": PredictiveFlushPolicy,
    "RAFT": ReliabilityAwareThrottlePolicy,
}

#: The six policies the paper evaluates, baseline first.
POLICY_NAMES = ("ICOUNT", "FLUSH", "STALL", "DG", "PDG", "DWARN")

#: The Section 5 proposals this reproduction additionally implements.
EXTENSION_POLICY_NAMES = ("FLUSHP", "RAFT")


def create_policy(name: str) -> FetchPolicy:
    """Instantiate a fresh fetch policy by (case-insensitive) name."""
    factory = _FACTORIES.get(name.upper())
    if factory is None:
        known = POLICY_NAMES + EXTENSION_POLICY_NAMES
        raise ConfigError(f"unknown fetch policy {name!r}; known: {known}")
    return factory()
