"""RAFT: reliability-aware fetch throttling (paper Section 5).

The paper's Section 5 sketches "reliability-aware fetch throttling, which
is built on top of existing fetch schemes and extended with reliability
awareness of individual threads ... to maintain a low AVF while achieving a
high throughput", and "reliability-aware resource allocation [that] avoids
resource abuse by threads with a high fraction of ACE bits within the
pipeline".

RAFT implements the sketch: each thread's *vulnerability pressure* is the
number of pipeline entries (IQ + ROB + LSQ) it currently holds — a direct
proxy for its resident ACE bits.  A thread whose pressure exceeds its fair
share of those resources by ``slack`` is throttled (loses fetch
eligibility) until it drains; the remaining threads are ordered by ICOUNT.
Unlike FLUSH, nothing is squashed: work already done is never discarded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.fetch.base import FetchPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore


class ReliabilityAwareThrottlePolicy(FetchPolicy):
    name = "RAFT"

    def __init__(self, slack: float = 1.25) -> None:
        if slack <= 0:
            raise ValueError("slack must be positive")
        self.slack = slack
        self.throttle_events = 0

    def _pressure(self, core: "SMTCore", tid: int) -> int:
        t = core.thread(tid)
        return len(t.rob) + len(t.lsq) + core.issue_queue.thread_count(tid)

    def _fair_share(self, core: "SMTCore") -> float:
        cfg = core.config
        per_thread_pool = (cfg.iq_entries / core.num_threads
                           + cfg.rob_entries + cfg.lsq_entries)
        return self.slack * per_thread_pool / 2.0

    def priorities(self, core: "SMTCore") -> List[int]:
        limit = self._fair_share(core)
        clear = []
        for tid in core.fetchable_threads():
            if self._pressure(core, tid) <= limit:
                clear.append(tid)
            else:
                self.throttle_events += 1
        if clear:
            return self.icount_order(core, clear)
        return self.icount_order(core, core.fetchable_threads())[:1]
