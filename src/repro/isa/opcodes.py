"""Operation classes and functional-unit mapping for the synthetic ISA."""

from __future__ import annotations

from enum import Enum, auto


class OpClass(Enum):
    """Dynamic operation classes recognised by the pipeline."""

    IALU = auto()      # integer add/sub/logic/shift/compare
    IMUL = auto()      # integer multiply
    IDIV = auto()      # integer divide
    FALU = auto()      # floating-point add/sub/convert/compare
    FMUL = auto()      # floating-point multiply
    FDIV = auto()      # floating-point divide / sqrt
    LOAD = auto()
    STORE = auto()
    BRANCH = auto()    # conditional branch
    JUMP = auto()      # unconditional direct jump
    CALL = auto()      # subroutine call (pushes return address)
    RET = auto()       # subroutine return (pops return address)
    NOP = auto()
    PREFETCH = auto()  # performance hint: never architecturally required


class FUType(Enum):
    """Functional unit pools of Table 1."""

    INT_ALU = auto()
    INT_MULDIV = auto()
    FP_ALU = auto()
    FP_MULDIV = auto()
    LOAD_STORE = auto()


_FU_FOR_OP = {
    OpClass.IALU: FUType.INT_ALU,
    OpClass.IMUL: FUType.INT_MULDIV,
    OpClass.IDIV: FUType.INT_MULDIV,
    OpClass.FALU: FUType.FP_ALU,
    OpClass.FMUL: FUType.FP_MULDIV,
    OpClass.FDIV: FUType.FP_MULDIV,
    OpClass.LOAD: FUType.LOAD_STORE,
    OpClass.STORE: FUType.LOAD_STORE,
    OpClass.PREFETCH: FUType.LOAD_STORE,
    OpClass.BRANCH: FUType.INT_ALU,
    OpClass.JUMP: FUType.INT_ALU,
    OpClass.CALL: FUType.INT_ALU,
    OpClass.RET: FUType.INT_ALU,
    OpClass.NOP: FUType.INT_ALU,
}

_MEMORY_OPS = frozenset({OpClass.LOAD, OpClass.STORE, OpClass.PREFETCH})
_CONTROL_OPS = frozenset({OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET})
_FP_OPS = frozenset({OpClass.FALU, OpClass.FMUL, OpClass.FDIV})


def fu_type_for(op: OpClass) -> FUType:
    """Map an operation class to the functional-unit pool that executes it."""
    return _FU_FOR_OP[op]


def is_memory_op(op: OpClass) -> bool:
    """True for operations that access the data memory hierarchy."""
    return op in _MEMORY_OPS


def is_control_op(op: OpClass) -> bool:
    """True for operations that can redirect the fetch stream."""
    return op in _CONTROL_OPS


def is_fp_op(op: OpClass) -> bool:
    """True for operations whose destination lives in the FP register file."""
    return op in _FP_OPS


def execution_latency(op: OpClass, config) -> int:
    """Execution latency in cycles for ``op`` under ``config``.

    Memory operations return the address-generation latency only; cache
    access time is added by the memory hierarchy.
    """
    from repro.isa.opcodes import OpClass as O  # local alias for the table below

    table = {
        O.IALU: config.int_alu_latency,
        O.IMUL: config.int_mult_latency,
        O.IDIV: config.int_div_latency,
        O.FALU: config.fp_alu_latency,
        O.FMUL: config.fp_mult_latency,
        O.FDIV: config.fp_div_latency,
        O.LOAD: config.agen_latency,
        O.STORE: config.agen_latency,
        O.PREFETCH: config.agen_latency,
        O.BRANCH: config.int_alu_latency,
        O.JUMP: config.int_alu_latency,
        O.CALL: config.int_alu_latency,
        O.RET: config.int_alu_latency,
        O.NOP: 1,
    }
    return table[op]
