"""Synthetic RISC ISA used by the trace-driven SMT model.

The ISA carries exactly the information AVF analysis needs: the operation
class (which selects a functional unit and latency), the dataflow (source and
destination architectural registers), memory addresses for loads/stores, and
control flow for branches.  See DESIGN.md section 2 for why this substitutes
for the Alpha ISA used by M-Sim.
"""

from repro.isa.opcodes import OpClass, FUType, fu_type_for, is_memory_op, is_control_op
from repro.isa.instruction import DynInstr, AceClass

__all__ = [
    "OpClass",
    "FUType",
    "fu_type_for",
    "is_memory_op",
    "is_control_op",
    "DynInstr",
    "AceClass",
]
