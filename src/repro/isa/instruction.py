"""Dynamic instruction record flowing through the pipeline.

A :class:`DynInstr` is produced by the trace generator (correct path) or the
wrong-path synthesiser (after a branch misprediction) and then annotated by
the pipeline as it moves through the machine.  The AVF engine reads the
``ace`` classification and the pipeline-stamped timestamps to compute ACE-bit
residency per structure.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Optional, Tuple

from repro.isa.opcodes import OpClass, is_control_op, is_memory_op


class AceClass(Enum):
    """Architecturally-correct-execution classification of an instruction.

    Mirrors the un-ACE categories of Mukherjee et al. (MICRO 2003): besides
    fully ACE instructions, state is un-ACE when it belongs to NOPs,
    performance-enhancing operations (prefetches), dynamically dead
    instructions, or wrong-path (mis-speculated) instructions.
    """

    ACE = auto()
    NOP = auto()
    PREFETCH = auto()
    DYN_DEAD = auto()   # result overwritten before any consumer reads it
    WRONG_PATH = auto()

    @property
    def is_ace(self) -> bool:
        return self is AceClass.ACE


class DynInstr:
    """One dynamic instruction instance.

    Trace-generator fields are immutable in spirit; the pipeline mutates only
    the bookkeeping fields below the ``--- pipeline state ---`` marker.
    """

    __slots__ = (
        # --- trace fields ---
        "thread_id", "seq", "pc", "op", "src_regs", "dest_reg",
        "mem_addr", "mem_size", "taken", "target", "ace",
        "wrong_path",
        # --- pipeline state ---
        "fetched_at", "renamed_at", "issued_at", "completed_at", "committed_at",
        "phys_dest", "old_phys_dest", "phys_srcs",
        "rob_index", "lsq_index", "iq_slot",
        "squashed", "mispredicted", "dl1_missed", "l2_missed",
        "mem_ready_at", "fetch_stamp", "prediction", "pending_srcs",
        "value_tag",
    )

    def __init__(
        self,
        thread_id: int,
        seq: int,
        pc: int,
        op: OpClass,
        src_regs: Tuple[int, ...] = (),
        dest_reg: Optional[int] = None,
        mem_addr: int = 0,
        mem_size: int = 8,
        taken: bool = False,
        target: int = 0,
        ace: AceClass = AceClass.ACE,
        wrong_path: bool = False,
    ) -> None:
        self.thread_id = thread_id
        self.seq = seq
        self.pc = pc
        self.op = op
        self.src_regs = src_regs
        self.dest_reg = dest_reg
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.taken = taken
        self.target = target
        self.ace = ace
        self.wrong_path = wrong_path

        self.fetched_at = -1
        self.renamed_at = -1
        self.issued_at = -1
        self.completed_at = -1
        self.committed_at = -1
        self.phys_dest: Optional[int] = None
        self.old_phys_dest: Optional[int] = None
        self.phys_srcs: Tuple[int, ...] = ()
        self.rob_index = -1
        self.lsq_index = -1
        self.iq_slot = -1
        self.squashed = False
        self.mispredicted = False
        self.dl1_missed = False
        self.l2_missed = False
        self.mem_ready_at = -1
        self.fetch_stamp = -1    # per-thread monotonic fetch order (squash boundary)
        self.prediction = None   # BranchPrediction attached at fetch (control ops)
        self.pending_srcs = 0    # un-produced renamed sources (issue wakeup)
        self.value_tag = 0       # taint accumulator for live fault injection

    # -- classification helpers ------------------------------------------------

    @property
    def is_ace(self) -> bool:
        """True when soft-error strikes on this instruction's state matter.

        Squashed and wrong-path instructions are never ACE regardless of how
        they were classified at generation time.
        """
        return self.ace.is_ace and not self.squashed and not self.wrong_path

    @property
    def is_memory(self) -> bool:
        return is_memory_op(self.op)

    @property
    def is_load(self) -> bool:
        return self.op is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op is OpClass.STORE

    @property
    def is_control(self) -> bool:
        return is_control_op(self.op)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            ch
            for ch, cond in (
                ("W", self.wrong_path),
                ("S", self.squashed),
                ("M", self.mispredicted),
            )
            if cond
        )
        return (
            f"DynInstr(t{self.thread_id}#{self.seq} {self.op.name} pc={self.pc:#x}"
            f" ace={self.ace.name}{' ' + flags if flags else ''})"
        )


def classify_generated(op: OpClass, dynamically_dead: bool) -> AceClass:
    """ACE class assigned by the trace generator for a correct-path instruction."""
    if op is OpClass.NOP:
        return AceClass.NOP
    if op is OpClass.PREFETCH:
        return AceClass.PREFETCH
    if dynamically_dead:
        return AceClass.DYN_DEAD
    return AceClass.ACE
