"""Performance and reliability-efficiency metrics (paper Section 3).

* IPC / per-thread IPC — raw throughput.
* MITF (mean instructions to failure) is proportional to IPC/AVF at fixed
  frequency and raw error rate; IPC/AVF is the paper's reliability-
  efficiency metric.
* Weighted speedup and harmonic mean of weighted IPC add fairness
  (Luo et al.; Raasch & Reinhardt) — used in Figure 8.
"""

from repro.metrics.perf import (
    ipc,
    weighted_speedup,
    harmonic_mean_weighted_ipc,
)
from repro.metrics.reliability import (
    reliability_efficiency,
    mitf_relative,
    normalize_to_baseline,
)

__all__ = [
    "ipc",
    "weighted_speedup",
    "harmonic_mean_weighted_ipc",
    "reliability_efficiency",
    "mitf_relative",
    "normalize_to_baseline",
]
