"""Reliability-efficiency metrics built on AVF.

MITF = (committed instructions between failures).  At fixed frequency and
raw device error rate, MITF is proportional to IPC/AVF (Weaver et al.,
ISCA 2004), so IPC/AVF ratios compare design points without knowing the raw
error rate.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple

_EPSILON = 1e-12


def wilson_interval(successes: int, trials: int,
                    z: float = 1.959963984540054) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The live fault-injection validation uses this to ask whether the
    ACE-computed AVF falls inside the statistical-injection estimate's
    confidence interval (paper Section 2: the two methodologies must
    agree up to sampling error).  Wilson rather than the normal
    approximation because campaign SDC counts are small and the rates
    sit near 0 for lightly occupied structures.  ``z`` defaults to the
    two-sided 95% quantile.
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes ({successes}) outside [0, {trials}]")
    if trials == 0:
        return 0.0, 1.0  # no information: the vacuous interval
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    half = (z * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
            / denom)
    # Analytically the interval always contains p, and at k=0 / k=n the
    # touching bound is exactly 0 / 1; the float evaluation above can
    # miss both by an ulp, so clamp against p as well as against [0, 1].
    return (max(0.0, min(centre - half, p)),
            min(1.0, max(centre + half, p)))


def reliability_efficiency(ipc_value: float, avf: float) -> float:
    """IPC/AVF: work completed per unit of vulnerability.

    An AVF of zero means no ACE bits were ever exposed; the efficiency is
    unbounded and we return ``inf`` so callers can surface it explicitly.
    A dead design point — zero IPC *and* zero AVF — did no work and
    exposed nothing, so its efficiency is the indeterminate 0/0: ``nan``,
    rendered as ``n/a`` in reports, never the flattering ``inf``.
    """
    if avf <= _EPSILON:
        if ipc_value <= _EPSILON:
            return float("nan")
        return float("inf")
    return ipc_value / avf


def mitf_relative(ipc_value: float, avf: float, baseline_ipc: float,
                  baseline_avf: float) -> float:
    """MITF of a design point relative to a baseline (ratio of IPC/AVF).

    When both design points have zero AVF, both efficiencies are infinite
    but the points are not equivalent: MITF is proportional to IPC/AVF, so
    in the limit of equal (vanishing) AVF the ratio is the IPC ratio.
    Comparisons involving a dead point (0 IPC, 0 AVF) are indeterminate
    and return ``nan``.
    """
    base = reliability_efficiency(baseline_ipc, baseline_avf)
    this = reliability_efficiency(ipc_value, avf)
    if math.isnan(base) or math.isnan(this):
        return float("nan")
    if base == float("inf"):
        if this == float("inf"):
            # Both zero-AVF: distinguish the points by the work they did.
            return ipc_value / baseline_ipc
        return 0.0
    if this == float("inf"):
        return float("inf")
    return this / base


def normalize_to_baseline(values: Mapping[str, float],
                          baseline_key: str) -> Dict[str, float]:
    """Scale a {name: value} mapping so the baseline entry equals 1.0.

    Figures 7 and 8 present IPC/AVF normalised to the ICOUNT baseline.
    """
    baseline = values[baseline_key]
    if abs(baseline) <= _EPSILON:
        return {k: float("inf") if v > 0 else 0.0 for k, v in values.items()}
    return {k: v / baseline for k, v in values.items()}
