"""Reliability-efficiency metrics built on AVF.

MITF = (committed instructions between failures).  At fixed frequency and
raw device error rate, MITF is proportional to IPC/AVF (Weaver et al.,
ISCA 2004), so IPC/AVF ratios compare design points without knowing the raw
error rate.
"""

from __future__ import annotations

from typing import Dict, Mapping

_EPSILON = 1e-12


def reliability_efficiency(ipc_value: float, avf: float) -> float:
    """IPC/AVF: work completed per unit of vulnerability.

    An AVF of zero means no ACE bits were ever exposed; the efficiency is
    unbounded and we return ``inf`` so callers can surface it explicitly.
    """
    if avf <= _EPSILON:
        return float("inf")
    return ipc_value / avf


def mitf_relative(ipc_value: float, avf: float, baseline_ipc: float,
                  baseline_avf: float) -> float:
    """MITF of a design point relative to a baseline (ratio of IPC/AVF)."""
    base = reliability_efficiency(baseline_ipc, baseline_avf)
    this = reliability_efficiency(ipc_value, avf)
    if base == float("inf"):
        return 1.0 if this == float("inf") else 0.0
    if this == float("inf"):
        return float("inf")
    return this / base


def normalize_to_baseline(values: Mapping[str, float],
                          baseline_key: str) -> Dict[str, float]:
    """Scale a {name: value} mapping so the baseline entry equals 1.0.

    Figures 7 and 8 present IPC/AVF normalised to the ICOUNT baseline.
    """
    baseline = values[baseline_key]
    if abs(baseline) <= _EPSILON:
        return {k: float("inf") if v > 0 else 0.0 for k, v in values.items()}
    return {k: v / baseline for k, v in values.items()}
