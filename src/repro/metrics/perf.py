"""Throughput and fairness metrics."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ReproError


def ipc(committed: int, cycles: int) -> float:
    """Committed instructions per cycle."""
    if cycles <= 0:
        raise ReproError("cycles must be positive")
    return committed / cycles


def weighted_speedup(smt_ipcs: Sequence[float], st_ipcs: Sequence[float]) -> float:
    """Sum of each thread's SMT IPC normalised to its standalone IPC.

    Values above 1.0 mean the SMT machine outperforms running the threads
    one at a time on the same core (Snavely/Tullsen's symbiosis metric).
    """
    if len(smt_ipcs) != len(st_ipcs):
        raise ReproError("weighted speedup needs matching SMT and ST IPC lists")
    if any(st <= 0 for st in st_ipcs):
        raise ReproError("standalone IPCs must be positive")
    return sum(smt / st for smt, st in zip(smt_ipcs, st_ipcs))


def harmonic_mean_weighted_ipc(smt_ipcs: Sequence[float],
                               st_ipcs: Sequence[float]) -> float:
    """Harmonic mean of the per-thread weighted IPCs (Luo et al., ISPASS 2001).

    The harmonic mean punishes imbalance: starving one thread collapses the
    metric even when total throughput looks healthy, so it captures both
    performance and fairness.
    """
    if len(smt_ipcs) != len(st_ipcs):
        raise ReproError("harmonic IPC needs matching SMT and ST IPC lists")
    if any(st <= 0 for st in st_ipcs):
        raise ReproError("standalone IPCs must be positive")
    ratios = [smt / st for smt, st in zip(smt_ipcs, st_ipcs)]
    if any(r <= 0 for r in ratios):
        return 0.0
    return len(ratios) / sum(1.0 / r for r in ratios)


def aggregate_weighted_avf(avfs: Mapping[int, float],
                           work_fractions: Mapping[int, float]) -> float:
    """Sequential-execution AVF: thread AVFs weighted by work share.

    Used for the paper's Figure 3 comparison: "the weighted AVF in
    sequential execution is derived using an individual thread's AVF
    weighted by the fraction of work that each thread completes."
    """
    total = sum(work_fractions.values())
    if total <= 0:
        raise ReproError("work fractions must sum to a positive value")
    return sum(avfs[t] * work_fractions[t] for t in avfs) / total
