"""Final AVF report: per-structure and per-thread vulnerability numbers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.avf.bits import structure_bits
from repro.avf.structures import FIGURE1_ORDER, PRIVATE_STRUCTURES, Structure

if TYPE_CHECKING:  # pragma: no cover
    from repro.avf.engine import AvfEngine


@dataclass
class AvfReport:
    """Reduced AVF results for one simulation.

    ``avf[s]`` is the structure's AVF in [0, 1]; ``thread_avf[s][t]`` is
    thread *t*'s contribution (shared structures: contributions sum to the
    structure AVF; private structures: the thread's own copy's AVF);
    ``utilization[s]`` is the occupied fraction of the structure.
    """

    cycles: int
    num_threads: int
    avf: Dict[Structure, float] = field(default_factory=dict)
    thread_avf: Dict[Structure, Dict[int, float]] = field(default_factory=dict)
    utilization: Dict[Structure, float] = field(default_factory=dict)
    bits: Dict[Structure, int] = field(default_factory=dict)

    @classmethod
    def from_engine(cls, engine: "AvfEngine", cycles: int) -> "AvfReport":
        report = cls(cycles=cycles, num_threads=engine.num_threads)
        for structure, account in engine.shared_accounts.items():
            report.avf[structure] = account.avf(cycles)
            report.utilization[structure] = account.utilization(cycles)
            report.thread_avf[structure] = {
                tid: account.thread_avf(tid, cycles)
                for tid in range(engine.num_threads)
            }
        for structure, per_thread in engine.private_accounts.items():
            avfs = {tid: acct.avf(cycles) for tid, acct in per_thread.items()}
            report.avf[structure] = (
                sum(avfs.values()) / len(avfs) if avfs else 0.0
            )
            report.thread_avf[structure] = avfs
            utils = [acct.utilization(cycles) for acct in per_thread.values()]
            report.utilization[structure] = sum(utils) / len(utils) if utils else 0.0
        for structure in Structure:
            report.bits[structure] = structure_bits(
                structure, engine.config, engine.num_threads
            )
        return report

    # -- aggregation --------------------------------------------------------------

    def processor_avf(self) -> float:
        """Whole-processor AVF: structure AVFs weighted by their bit counts.

        This is the Section 2 aggregation rule ("add the AVF values of all of
        the hardware structures together by weighting them by the number of
        bits within each structure").  The paper itself reports per-structure
        AVF; this aggregate is provided for completeness.
        """
        total_bits = sum(self.bits.values())
        if not total_bits:
            return 0.0
        weighted = sum(self.avf[s] * self.bits[s] for s in self.avf)
        return weighted / total_bits

    def pipeline_avf(self) -> float:
        """Bit-weighted AVF over the pipeline structures only (no caches/TLB)."""
        pipeline = [s for s in self.avf
                    if s not in (Structure.DL1_DATA, Structure.DL1_TAG, Structure.DTLB)]
        total_bits = sum(self.bits[s] for s in pipeline)
        if not total_bits:
            return 0.0
        return sum(self.avf[s] * self.bits[s] for s in pipeline) / total_bits

    # -- serialization -------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict carrying the full report (see :meth:`from_payload`).

        Structures are keyed by their ``Structure.value`` string and thread
        ids by their decimal string, so the payload survives a JSON
        round-trip byte-exactly (Python floats serialise via shortest
        round-trip repr).
        """
        return {
            "cycles": self.cycles,
            "num_threads": self.num_threads,
            "avf": {s.value: v for s, v in self.avf.items()},
            "thread_avf": {
                s.value: {str(tid): v for tid, v in per.items()}
                for s, per in self.thread_avf.items()
            },
            "utilization": {s.value: v for s, v in self.utilization.items()},
            "bits": {s.value: v for s, v in self.bits.items()},
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "AvfReport":
        """Inverse of :meth:`to_payload`."""
        return cls(
            cycles=int(payload["cycles"]),
            num_threads=int(payload["num_threads"]),
            avf={Structure(k): float(v) for k, v in payload["avf"].items()},
            thread_avf={
                Structure(k): {int(tid): float(v) for tid, v in per.items()}
                for k, per in payload["thread_avf"].items()
            },
            utilization={Structure(k): float(v)
                         for k, v in payload["utilization"].items()},
            bits={Structure(k): int(v) for k, v in payload["bits"].items()},
        )

    # -- presentation --------------------------------------------------------------

    def to_dict(self) -> Dict[str, float]:
        """Flat {structure name: AVF} mapping, in Figure 1 order."""
        out = {s.value: self.avf[s] for s in FIGURE1_ORDER if s in self.avf}
        if Structure.DTLB in self.avf:
            out[Structure.DTLB.value] = self.avf[Structure.DTLB]
        return out

    def format_table(self, title: Optional[str] = None) -> str:
        """Human-readable per-structure AVF/utilisation table."""
        lines = []
        if title:
            lines.append(title)
        lines.append(f"{'structure':<10} {'AVF':>8} {'util':>8} "
                     + " ".join(f"{'t' + str(t):>7}" for t in range(self.num_threads)))
        for s in FIGURE1_ORDER + (Structure.DTLB,):
            if s not in self.avf:
                continue
            per_thread = " ".join(
                f"{self.thread_avf[s].get(t, 0.0):7.4f}" for t in range(self.num_threads)
            )
            lines.append(f"{s.value:<10} {self.avf[s]:8.4f} "
                         f"{self.utilization[s]:8.4f} {per_thread}")
        return "\n".join(lines)
