"""Per-entry bit widths of the tracked structures.

Per-structure AVF is a ratio of ACE entry-cycles to capacity entry-cycles,
so the absolute widths cancel within a structure; they matter only for the
whole-processor AVF aggregation (`AvfReport.processor_avf`), which weights
each structure by its total bit count — the aggregation rule the paper's
Section 2 describes.  The widths below follow a generic 64-bit out-of-order
core with 44-bit physical addresses.
"""

from __future__ import annotations

from repro.avf.structures import Structure
from repro.config import MachineConfig

#: Issue-queue entry: opcode/control (16) + two source tags (2x8) + dest tag
#: (8) + ROB index (8) + thread id (3) + immediate/status (21).
IQ_ENTRY_BITS = 64

#: ROB entry: PC (44) + arch dest (6) + new/old physical mappings (2x8) +
#: completion/exception status (6).
ROB_ENTRY_BITS = 72

#: One functional unit's latched state: two operands + result (3x64) + opcode
#: and control latches (16).
FU_BITS = 208

#: One physical register (data bits only).
PHYS_REG_BITS = 64

#: LSQ address/tag half: virtual address (44) + size/status (8).
LSQ_TAG_ENTRY_BITS = 52

#: LSQ data half: one 64-bit word.
LSQ_DATA_ENTRY_BITS = 64

#: Tracked DL1 data word (the cache AVF model works at 8-byte granularity).
DL1_WORD_BITS = 64

#: DTLB entry: VPN tag (28) + PPN (28) + permissions/ASID (8).
DTLB_ENTRY_BITS = 64


def dl1_tag_bits(config: MachineConfig) -> int:
    """Tag-array bits per DL1 line: 44-bit address minus offset/index, +V/D."""
    offset_bits = config.dl1.line_bytes.bit_length() - 1
    index_bits = config.dl1.num_sets.bit_length() - 1
    return 44 - offset_bits - index_bits + 2


def entry_bits(structure: Structure, config: MachineConfig) -> int:
    """Bits per tracked entry of ``structure``."""
    table = {
        Structure.IQ: IQ_ENTRY_BITS,
        Structure.ROB: ROB_ENTRY_BITS,
        Structure.FU: FU_BITS,
        Structure.REG: PHYS_REG_BITS,
        Structure.LSQ_TAG: LSQ_TAG_ENTRY_BITS,
        Structure.LSQ_DATA: LSQ_DATA_ENTRY_BITS,
        Structure.DL1_DATA: DL1_WORD_BITS,
        Structure.DL1_TAG: dl1_tag_bits(config),
        Structure.DTLB: DTLB_ENTRY_BITS,
    }
    return table[structure]


def total_fus(config: MachineConfig) -> int:
    return (config.int_alus + config.int_mult_div + config.load_store_units
            + config.fp_alus + config.fp_mult_div)


def structure_capacity(structure: Structure, config: MachineConfig,
                       num_threads: int) -> int:
    """Tracked entries of ``structure`` in a machine with ``num_threads`` contexts.

    Private structures report their *per-thread* capacity (the account holds
    one copy per context).
    """
    table = {
        Structure.IQ: config.iq_entries,
        Structure.ROB: config.rob_entries,
        Structure.FU: total_fus(config),
        # Physical file = rename pool + per-thread architectural backing
        # (32 INT + 32 FP per context); matches the pipeline's sizing.
        Structure.REG: (config.int_phys_regs + config.fp_phys_regs
                        + 64 * num_threads),
        Structure.LSQ_TAG: config.lsq_entries,
        Structure.LSQ_DATA: config.lsq_entries,
        Structure.DL1_DATA: config.dl1.num_lines * (config.dl1.line_bytes // 8),
        Structure.DL1_TAG: config.dl1.num_lines,
        Structure.DTLB: config.dtlb.entries,
    }
    return table[structure]


def structure_bits(structure: Structure, config: MachineConfig,
                   num_threads: int) -> int:
    """Total machine bits of ``structure`` (private structures x contexts)."""
    from repro.avf.structures import PRIVATE_STRUCTURES

    per_copy = entry_bits(structure, config) * structure_capacity(
        structure, config, num_threads
    )
    if structure in PRIVATE_STRUCTURES:
        return per_copy * num_threads
    return per_copy
