"""Time-windowed AVF: vulnerability phase behaviour.

The same group's companion study (Fu, Poe, Li & Fortes, MASCOTS 2006 — the
paper's reference [8]) observes that a structure's AVF moves through
*phases* during execution and asks how predictable they are.  This module
adds that lens to the SMT framework: the engine's ledgers are snapshotted
every ``window`` cycles, yielding a per-structure AVF time series, plus the
simple statistics the phase study reports (variability, and the accuracy of
a last-value phase predictor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from repro.avf.structures import PRIVATE_STRUCTURES, Structure
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.avf.engine import AvfEngine


@dataclass
class PhaseSeries:
    """Per-window AVF values for every structure."""

    window: int
    avf: Dict[Structure, List[float]] = field(default_factory=dict)

    def windows(self) -> int:
        return len(next(iter(self.avf.values()))) if self.avf else 0


@dataclass
class PhaseStatistics:
    """Variability and last-value predictability of one structure's series."""

    mean: float
    std: float
    coefficient_of_variation: float
    last_value_mae: float
    """Mean absolute error of predicting each window's AVF with the previous
    window's value — the baseline predictor of the phase study."""


class PhaseTracker:
    """Snapshots an engine's ledgers on window boundaries."""

    def __init__(self, engine: "AvfEngine", window: int) -> None:
        if window <= 0:
            raise ConfigError("phase window must be positive")
        self.engine = engine
        self.window = window
        self._last_boundary = 0
        self._prev_totals: Dict[Structure, float] = {
            s: 0.0 for s in Structure
        }
        self.series = PhaseSeries(window=window,
                                  avf={s: [] for s in Structure})

    def _total_ace(self, structure: Structure) -> float:
        if structure in PRIVATE_STRUCTURES:
            return sum(acct.total_ace()
                       for acct in self.engine.private_accounts[structure].values())
        return self.engine.account(structure).total_ace()

    def _capacity(self, structure: Structure) -> int:
        if structure in PRIVATE_STRUCTURES:
            per_thread = self.engine.account(structure, 0).capacity
            return per_thread * self.engine.num_threads
        return self.engine.account(structure).capacity

    def tick(self, cycle: int) -> None:
        """Call once per cycle; emits a sample at each window boundary.

        Note: structures accrue residency at *deallocation*, so a window's
        sample includes intervals that ended inside it even if they started
        earlier — the standard trade-off of deallocation-time accounting.
        """
        if cycle - self._last_boundary < self.window:
            return
        self._emit(cycle)

    def _emit(self, cycle: int) -> None:
        span = cycle - self._last_boundary
        if span <= 0:
            return
        for s in Structure:
            total = self._total_ace(s)
            delta = total - self._prev_totals[s]
            self._prev_totals[s] = total
            avf = min(max(delta / (self._capacity(s) * span), 0.0), 1.0)
            self.series.avf[s].append(avf)
        self._last_boundary = cycle

    def finalize(self, cycle: int) -> PhaseSeries:
        """Emit the trailing partial window (if any) and return the series."""
        if cycle > self._last_boundary:
            self._emit(cycle)
        return self.series

    # -- probe-bus lifecycle hooks ---------------------------------------------

    def on_cycle(self, core) -> None:
        self.tick(core.cycle)

    def on_finalize(self, core) -> None:
        self.finalize(core.cycle)


def phase_statistics(series: PhaseSeries, structure: Structure) -> PhaseStatistics:
    """Variability and last-value predictability of one structure's AVF."""
    values = series.avf.get(structure, [])
    if not values:
        return PhaseStatistics(0.0, 0.0, 0.0, 0.0)
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    std = var ** 0.5
    cov = std / mean if mean > 0 else 0.0
    if n > 1:
        mae = sum(abs(values[i] - values[i - 1]) for i in range(1, n)) / (n - 1)
    else:
        mae = 0.0
    return PhaseStatistics(mean=mean, std=std, coefficient_of_variation=cov,
                           last_value_mae=mae)
