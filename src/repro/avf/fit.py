"""FIT-rate and MTTF estimation from AVF.

Section 2 of the paper: "The overall hardware structure's error rate is
decided by two factors: the device raw error rate ... and the AVF."  Given
a raw soft-error rate per bit (technology-dependent; the classic planning
number is ~1e-3 FIT/bit, i.e. 1000 FIT/Mbit), a structure's contribution is

    FIT(structure) = raw_fit_per_bit x bits(structure) x AVF(structure)

and the processor-level rate is the sum over protected^W tracked
structures.  MTTF follows as 1e9 hours / FIT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.avf.report import AvfReport
from repro.avf.structures import Structure
from repro.errors import ConfigError

#: A common technology planning number: 1 milli-FIT per bit.
DEFAULT_RAW_FIT_PER_BIT = 1e-3

_HOURS_PER_YEAR = 24.0 * 365.25


@dataclass
class FitEstimate:
    """Failure-rate breakdown derived from one AVF report."""

    raw_fit_per_bit: float
    per_structure: Dict[Structure, float] = field(default_factory=dict)

    @property
    def total_fit(self) -> float:
        return sum(self.per_structure.values())

    @property
    def mttf_hours(self) -> float:
        total = self.total_fit
        return float("inf") if total <= 0 else 1e9 / total

    @property
    def mttf_years(self) -> float:
        hours = self.mttf_hours
        return float("inf") if hours == float("inf") else hours / _HOURS_PER_YEAR

    def dominant_structure(self) -> Structure:
        """The structure contributing the most failures — the paper's
        "vulnerability hotspot" that architects should protect first."""
        return max(self.per_structure, key=self.per_structure.get)

    def summary(self) -> str:
        lines = [f"{'structure':<10} {'bits':>9} {'FIT':>10} {'share':>7}"]
        total = self.total_fit
        for s, fit in sorted(self.per_structure.items(),
                             key=lambda kv: -kv[1]):
            share = fit / total if total else 0.0
            lines.append(f"{s.value:<10} {'':>9} {fit:10.3f} {share:7.1%}")
        lines.append(f"total FIT {total:.3f}  (MTTF {self.mttf_years:.1f} years)")
        return "\n".join(lines)


def fit_estimate(report: AvfReport,
                 raw_fit_per_bit: float = DEFAULT_RAW_FIT_PER_BIT) -> FitEstimate:
    """Convert an AVF report into a per-structure FIT breakdown."""
    if raw_fit_per_bit <= 0:
        raise ConfigError("raw_fit_per_bit must be positive")
    estimate = FitEstimate(raw_fit_per_bit=raw_fit_per_bit)
    for s in Structure:
        if s in report.avf:
            estimate.per_structure[s] = (
                raw_fit_per_bit * report.bits[s] * report.avf[s]
            )
    return estimate
