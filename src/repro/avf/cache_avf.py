"""ACE classification of address-based structures (DL1 and DTLB).

Implements the address-based-structure methodology of Biswas et al.
(ISCA 2005) at the granularity our content model keeps:

**DL1 data array** (per 8-byte word within each line)
  * a word that is read is ACE from its fill (or last producing write) until
    its last read — a strike in that window feeds a wrong value to the core;
  * a dirty word is additionally ACE from its last write until eviction —
    the writeback must deliver it to memory intact;
  * a clean, never-read word is un-ACE for its whole residency.  This is
    exactly why the paper finds the DL1 *data* AVF below the DL1 *tag* AVF:
    only the accessed fraction of each block matters.

**DL1 tag array** (per line)
  * tag bits are consulted on *every* lookup, so the tag is ACE from fill to
    the line's last access, and all the way to eviction when the line is
    dirty (a corrupted tag loses the writeback).

**DTLB** (per entry)
  * a translation is ACE from fill until its last use; entries never used
    again before eviction are un-ACE.
"""

from __future__ import annotations

from repro.avf.account import VulnerabilityAccount
from repro.memory.cache import CacheLine
from repro.memory.tlb import TlbEntry


def _union_length(a_start: int, a_end: int, b_start: int, b_end: int) -> int:
    """Length of the union of two (possibly empty/overlapping) intervals."""
    len_a = max(0, a_end - a_start)
    len_b = max(0, b_end - b_start)
    if len_a == 0:
        return len_b
    if len_b == 0:
        return len_a
    overlap = max(0, min(a_end, b_end) - max(a_start, b_start))
    return len_a + len_b - overlap


class Dl1AvfObserver:
    """Cache observer feeding the DL1 data/tag vulnerability accounts."""

    def __init__(self, data_account: VulnerabilityAccount,
                 tag_account: VulnerabilityAccount) -> None:
        self._data = data_account
        self._tag = tag_account

    def on_evict(self, line: CacheLine, cycle: int) -> None:
        # Clip residency to the measurement window: lines filled during a
        # discarded warmup only count from the ledger reset onwards, matching
        # add_interval's own clipping (and the conservation law the audit
        # layer enforces: occupied entry-cycles never exceed capacity x
        # elapsed window cycles).
        fill = max(line.fill_cycle, self._data.window_start)
        residency = max(0, cycle - fill)
        if residency == 0:
            return
        thread = line.thread_id

        # --- data array: per-word ACE intervals -------------------------------
        # All words belong to the same thread, so the per-word ACE lengths are
        # summed locally and folded into the ledger with one add per bucket;
        # integer partial sums make the result bit-identical to per-word adds.
        ace_total = 0
        num_words = len(line.word_last_read)
        for w in range(num_words):
            last_read = line.word_last_read[w]
            last_write = line.word_last_write[w]
            read_start = fill
            # Window of exposure while the word's value still feeds the core.
            read_ace = (read_start, last_read) if last_read > read_start else (0, 0)
            # Dirty words must survive until the writeback at eviction.
            dirty_ace = (max(last_write, fill), cycle) if line.word_dirty[w] else (0, 0)
            ace = _union_length(*read_ace, *dirty_ace)
            ace_total += min(ace, residency)
        self._data.add(thread, ace_total, ace=True)
        self._data.add(thread, residency * num_words - ace_total, ace=False)

        # --- tag array ----------------------------------------------------------
        if line.dirty:
            tag_ace = residency
        elif line.last_access_cycle > fill:
            # Loads are timestamped at cycle+1, so a line touched on the
            # final cycle can record an access one cycle past the drain
            # point; exposure cannot exceed the measured residency.
            tag_ace = min(line.last_access_cycle - fill, residency)
        else:
            tag_ace = 0
        self._tag.add(thread, tag_ace, ace=True)
        self._tag.add(thread, residency - tag_ace, ace=False)


class DtlbAvfObserver:
    """TLB observer feeding the DTLB vulnerability account."""

    def __init__(self, account: VulnerabilityAccount) -> None:
        self._account = account

    def on_evict(self, entry: TlbEntry, cycle: int) -> None:
        # Same window clipping as the DL1 observer: see Dl1AvfObserver.
        fill = max(entry.fill_cycle, self._account.window_start)
        residency = max(0, cycle - fill)
        if residency == 0:
            return
        ace = max(0, entry.last_use_cycle - fill) if entry.uses > 1 else 0
        ace = min(ace, residency)
        self._account.add(entry.thread_id, ace, ace=True)
        self._account.add(entry.thread_id, residency - ace, ace=False)
