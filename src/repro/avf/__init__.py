"""Architectural Vulnerability Factor (AVF) engine — the paper's contribution.

AVF analysis (Mukherjee et al., MICRO 2003) classifies every bit resident in
a hardware structure as ACE (required for Architecturally Correct Execution)
or un-ACE, and defines::

    AVF(structure) = ACE-bit-cycles / (structure bits x total cycles)

This package extends the methodology to SMT (the paper's contribution): every
ACE interval carries the thread that produced it, so the engine reports both
the aggregate AVF of each structure and the per-thread contributions —
exactly the decomposition behind the paper's Figures 1–8.
"""

from repro.avf.structures import Structure, SHARED_STRUCTURES, PRIVATE_STRUCTURES
from repro.avf.bits import structure_bits, entry_bits
from repro.avf.account import VulnerabilityAccount
from repro.avf.engine import AvfEngine
from repro.avf.cache_avf import Dl1AvfObserver, DtlbAvfObserver
from repro.avf.report import AvfReport
from repro.avf.fit import FitEstimate, fit_estimate
from repro.avf.phases import PhaseSeries, PhaseStatistics, phase_statistics

__all__ = [
    "Structure",
    "SHARED_STRUCTURES",
    "PRIVATE_STRUCTURES",
    "structure_bits",
    "entry_bits",
    "VulnerabilityAccount",
    "AvfEngine",
    "Dl1AvfObserver",
    "DtlbAvfObserver",
    "AvfReport",
    "FitEstimate",
    "fit_estimate",
    "PhaseSeries",
    "PhaseStatistics",
    "phase_statistics",
]
