"""AVF engine: owns every structure's ledger and builds the final report.

Shared structures (IQ, FU, register file, DL1, DTLB) have a single account;
per-thread structures (ROB, LSQ) have one account per context, and their
reported structure AVF is the mean over contexts (each context owns a
private copy of the hardware).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.avf.account import VulnerabilityAccount
from repro.avf.bits import structure_capacity
from repro.avf.cache_avf import Dl1AvfObserver, DtlbAvfObserver
from repro.avf.report import AvfReport
from repro.avf.structures import PRIVATE_STRUCTURES, SHARED_STRUCTURES, Structure
from repro.config import MachineConfig
from repro.errors import StructureError
from repro.instrument.recorder import reg_lifetime_segments


class AvfEngine:
    """Central ACE-bit accounting for one simulation."""

    def __init__(self, config: MachineConfig, num_threads: int,
                 record_intervals: bool = False) -> None:
        self.config = config
        self.num_threads = num_threads
        self.record_intervals = record_intervals
        self._shared: Dict[Structure, VulnerabilityAccount] = {}
        self._private: Dict[Structure, Dict[int, VulnerabilityAccount]] = {}
        for structure in Structure:
            capacity = structure_capacity(structure, config, num_threads)
            if structure in SHARED_STRUCTURES:
                self._shared[structure] = VulnerabilityAccount(
                    structure.value, capacity, record_intervals)
            else:
                self._private[structure] = {
                    tid: VulnerabilityAccount(f"{structure.value}[t{tid}]",
                                              capacity, record_intervals)
                    for tid in range(num_threads)
                }
        self.dl1_observer = Dl1AvfObserver(
            self._shared[Structure.DL1_DATA], self._shared[Structure.DL1_TAG]
        )
        self.dtlb_observer = DtlbAvfObserver(self._shared[Structure.DTLB])

    # -- account access ------------------------------------------------------------

    def account(self, structure: Structure,
                thread_id: Optional[int] = None) -> VulnerabilityAccount:
        """The ledger for ``structure`` (``thread_id`` required if private)."""
        if structure in SHARED_STRUCTURES:
            return self._shared[structure]
        if thread_id is None:
            raise StructureError(f"{structure} is per-thread; thread_id required")
        return self._private[structure][thread_id]

    # -- accrual shortcuts used by the pipeline -------------------------------------

    def occupy(self, structure: Structure, thread_id: int, start: int, end: int,
               ace: bool) -> None:
        """Record one entry of ``structure`` occupied over ``[start, end)``."""
        # Hot path (every structure deallocation): resolve the account with
        # two dict probes instead of a frozenset test plus a method call.
        account = self._shared.get(structure)
        if account is None:
            account = self._private[structure][thread_id]
        account.add_interval(thread_id, start, end, ace)

    def fu_busy_cycle(self, thread_id: int, ace: bool, cycle: int = -1) -> None:
        """Record one functional unit busy for one cycle."""
        account = self._shared[Structure.FU]
        if account.intervals is not None and cycle >= 0:
            account.add_interval(thread_id, cycle, cycle + 1, ace)
        else:
            account.add(thread_id, 1.0, ace)

    def reg_lifetime(self, thread_id: int, alloc: int, written: int,
                     last_read: int, freed: int, ace: bool) -> None:
        """Record one physical register's full allocation lifetime.

        [alloc, written) holds no valid data (un-ACE, per the paper's register
        life-cycle analysis); [written, last_read) is ACE when the value has
        ACE consumers; the remainder until ``freed`` is un-ACE.
        """
        account = self._shared[Structure.REG]
        for start, end, seg_ace in reg_lifetime_segments(
                alloc, written, last_read, freed, ace):
            account.add_interval(thread_id, start, end, seg_ace)

    def reset(self, cycle: int) -> None:
        """Zero all ledgers (end-of-warmup)."""
        for account in self._shared.values():
            account.reset(cycle)
        for per_thread in self._private.values():
            for account in per_thread.values():
                account.reset(cycle)

    def on_reset(self, cycle: int) -> None:
        """Probe-bus lifecycle hook: the measurement window restarted."""
        self.reset(cycle)

    # -- reduction -------------------------------------------------------------------

    def report(self, cycles: int) -> AvfReport:
        """Reduce all ledgers into an :class:`AvfReport` over ``cycles``."""
        return AvfReport.from_engine(self, cycles)

    def iter_accounts(self):
        """Yield ``(structure, thread_id, account)`` for every ledger.

        ``thread_id`` is ``None`` for shared structures.  The audit layer
        walks this to apply conservation checks uniformly.
        """
        for structure, account in self._shared.items():
            yield structure, None, account
        for structure, per_thread in self._private.items():
            for tid, account in per_thread.items():
                yield structure, tid, account

    @property
    def shared_accounts(self) -> Dict[Structure, VulnerabilityAccount]:
        return dict(self._shared)

    @property
    def private_accounts(self) -> Dict[Structure, Dict[int, VulnerabilityAccount]]:
        return {s: dict(a) for s, a in self._private.items()}
