"""ACE / un-ACE entry-cycle ledger for one structure.

The pipeline reports *intervals* (an IQ entry occupied cycles 100–130 by an
ACE instruction of thread 2) or *per-cycle samples* (FU 3 busy this cycle on
a wrong-path instruction).  The account reduces everything to three numbers
per thread — ACE entry-cycles, un-ACE entry-cycles — plus idle time implied
by capacity, from which AVF, per-thread AVF contributions and utilisation
all derive.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.errors import StructureError

#: Thread id used for residency not attributable to any context.
NO_THREAD = -1


class VulnerabilityAccount:
    """Entry-cycle ledger for one structure (one copy if shared).

    With ``record_intervals`` enabled, every interval is additionally kept
    verbatim in ``intervals`` as ``(thread, start, end, ace)`` tuples — the
    raw material the fault-injection campaign replays to cross-validate the
    summed ledgers (see :mod:`repro.faultinject`).
    """

    __slots__ = ("name", "capacity", "ace_cycles", "unace_cycles",
                 "window_start", "intervals", "has_direct_adds",
                 "_threads_cache")

    def __init__(self, name: str, capacity: int,
                 record_intervals: bool = False) -> None:
        if capacity <= 0:
            raise StructureError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.ace_cycles: Dict[int, float] = {}
        self.unace_cycles: Dict[int, float] = {}
        self.window_start = 0
        self.intervals: list | None = [] if record_intervals else None
        #: True once residency has been recorded outside ``add_interval``;
        #: the recorded intervals then no longer cover the whole ledger and
        #: replay-based audits must skip this account.
        self.has_direct_adds = False
        self._threads_cache: "tuple[int, ...] | None" = ()

    # -- recording ---------------------------------------------------------------

    def add(self, thread_id: int, entry_cycles: float, ace: bool) -> None:
        """Record ``entry_cycles`` of residency for ``thread_id``."""
        if entry_cycles < 0:
            raise StructureError(
                f"{self.name}: negative residency sample "
                f"({entry_cycles} entry-cycles for thread {thread_id})")
        self.has_direct_adds = True
        self._accrue(thread_id, entry_cycles, ace)

    def _accrue(self, thread_id: int, entry_cycles: float, ace: bool) -> None:
        if entry_cycles == 0:
            return
        ledger = self.ace_cycles if ace else self.unace_cycles
        if thread_id not in ledger:
            self._threads_cache = None
        ledger[thread_id] = ledger.get(thread_id, 0.0) + entry_cycles

    def add_interval(self, thread_id: int, start: int, end: int, ace: bool,
                     fraction: float = 1.0) -> None:
        """Record residency over ``[start, end)``, clipped to the window."""
        if end < start:
            raise StructureError(
                f"{self.name}: reversed residency interval "
                f"[{start}, {end}) for thread {thread_id}")
        if not 0.0 <= fraction <= 1.0:
            raise StructureError(
                f"{self.name}: residency fraction {fraction} outside [0, 1] "
                f"for thread {thread_id} over [{start}, {end})")
        lo = max(start, self.window_start)
        if end <= lo:
            return
        self._accrue(thread_id, (end - lo) * fraction, ace)
        if self.intervals is not None and fraction > 0:
            self.intervals.append((thread_id, lo, end, ace))
            if fraction != 1.0:
                # Fractional residency is not representable in the verbatim
                # interval log, so replay can no longer reproduce the sums.
                self.has_direct_adds = True

    def reset(self, cycle: int) -> None:
        """Discard accumulated residency; future intervals clip at ``cycle``."""
        self.ace_cycles.clear()
        self.unace_cycles.clear()
        if self.intervals is not None:
            self.intervals.clear()
        self.window_start = cycle
        self.has_direct_adds = False
        self._threads_cache = ()

    # -- reduction ---------------------------------------------------------------

    def total_ace(self) -> float:
        return sum(self.ace_cycles.values())

    def total_unace(self) -> float:
        return sum(self.unace_cycles.values())

    def occupied_cycles(self) -> float:
        """Total occupied (ACE + un-ACE) entry-cycles in the ledger."""
        return self.total_ace() + self.total_unace()

    def idle_cycles(self, cycles: int) -> float:
        """Idle entry-cycles implied by capacity: the conservation remainder.

        ``ACE + un-ACE + idle == capacity * cycles`` is the ledger's
        conservation law; a negative result means the ledger over-counts
        (the audit layer turns that into an :class:`InvariantViolation`).
        """
        return self.capacity * cycles - self.occupied_cycles()

    def replay_totals(self) -> "tuple[Dict[int, float], Dict[int, float]] | None":
        """Per-thread (ACE, un-ACE) entry-cycles re-derived from the log.

        Returns ``None`` when the log cannot reproduce the ledger: interval
        recording is off, or residency was recorded outside ``add_interval``
        (direct samples, fractional intervals).  Used by the audit layer to
        cross-validate the summed ledgers against an independent replay.
        """
        if self.intervals is None or self.has_direct_adds:
            return None
        ace_sums: Dict[int, float] = {}
        unace_sums: Dict[int, float] = {}
        for thread_id, lo, end, ace in self.intervals:
            ledger = ace_sums if ace else unace_sums
            ledger[thread_id] = ledger.get(thread_id, 0.0) + (end - lo)
        return ace_sums, unace_sums

    def avf(self, cycles: int) -> float:
        """ACE entry-cycles over capacity entry-cycles; always in [0, 1]."""
        if cycles <= 0:
            return 0.0
        return min(self.total_ace() / (self.capacity * cycles), 1.0)

    def thread_avf(self, thread_id: int, cycles: int) -> float:
        """This thread's contribution to the structure's AVF."""
        if cycles <= 0:
            return 0.0
        return min(self.ace_cycles.get(thread_id, 0.0) / (self.capacity * cycles), 1.0)

    def utilization(self, cycles: int) -> float:
        """Occupied (ACE + un-ACE) fraction of capacity entry-cycles."""
        if cycles <= 0:
            return 0.0
        occupied = self.total_ace() + self.total_unace()
        return min(occupied / (self.capacity * cycles), 1.0)

    def threads(self) -> Iterable[int]:
        """Sorted thread ids with recorded residency (cached between writes).

        The sort result is memoised and invalidated only when a ledger gains
        a new thread key — re-sorting on every call was pure waste, since
        the thread population stabilises within the first few cycles.
        """
        if self._threads_cache is None:
            seen = set(self.ace_cycles) | set(self.unace_cycles)
            seen.discard(NO_THREAD)
            self._threads_cache = tuple(sorted(seen))
        return self._threads_cache
