"""Compatibility re-export: the structure taxonomy moved to the probe layer.

The canonical definitions live in :mod:`repro.instrument.structures`, so
the instrumentation bus stays importable without the AVF maths; importing
them from here keeps every historical ``repro.avf.structures`` call site
working unchanged.
"""

from __future__ import annotations

from repro.instrument.structures import (FIGURE1_ORDER, PRIVATE_STRUCTURES,
                                         PROBE_STRUCTURES, SHARED_STRUCTURES,
                                         Structure)

__all__ = [
    "Structure",
    "SHARED_STRUCTURES",
    "PRIVATE_STRUCTURES",
    "PROBE_STRUCTURES",
    "FIGURE1_ORDER",
]
