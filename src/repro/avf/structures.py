"""The microarchitecture structures whose vulnerability the paper profiles.

Figure 1 groups them as *shared pipeline structures* (IQ, FU, register
file), *shared memory structures* (DL1 data, DL1 tag, DTLB) and *non-shared
(per-thread) structures* (ROB, LSQ data, LSQ tag).
"""

from __future__ import annotations

from enum import Enum


class Structure(Enum):
    """AVF-tracked hardware structures (paper Figures 1–8)."""

    IQ = "IQ"
    FU = "FU"
    REG = "Reg"
    DL1_DATA = "DL1_data"
    DL1_TAG = "DL1_tag"
    DTLB = "DTLB"
    ROB = "ROB"
    LSQ_DATA = "LSQ_data"
    LSQ_TAG = "LSQ_tag"

    def __str__(self) -> str:
        return self.value


#: Structures physically shared by all SMT contexts: one copy in the machine,
#: per-thread contributions sum to the structure's AVF.
SHARED_STRUCTURES = frozenset({
    Structure.IQ, Structure.FU, Structure.REG,
    Structure.DL1_DATA, Structure.DL1_TAG, Structure.DTLB,
})

#: Per-thread (replicated) structures: each context owns a private copy; the
#: reported structure AVF is the mean over the active contexts.
PRIVATE_STRUCTURES = frozenset({
    Structure.ROB, Structure.LSQ_DATA, Structure.LSQ_TAG,
})

#: Figure 1 display order.
FIGURE1_ORDER = (
    Structure.IQ, Structure.FU, Structure.REG,
    Structure.DL1_DATA, Structure.DL1_TAG,
    Structure.ROB, Structure.LSQ_DATA, Structure.LSQ_TAG,
)
