"""Machine and simulation configuration (Table 1 of the paper).

The defaults of :class:`MachineConfig` reproduce the simulated machine of
Table 1: an 8-wide, 7-stage SMT pipeline with a 96-entry shared issue queue,
per-thread 96-entry ROBs and 48-entry load/store queues, a shared merged
physical register file, and the cache/TLB hierarchy listed in the table.

Two values the paper does not state explicitly are documented here:

* the merged physical register pool size (``int_phys_regs``/``fp_phys_regs``,
  160 each) — chosen so that four or more threads contend for registers,
  which is what throttles per-thread ROB occupancy in the paper's Section 4.1
  analysis;
* the number of MSHRs (outstanding misses) per cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one set-associative cache."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int
    ports: int = 1
    mshrs: int = 8
    writeback: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.assoc <= 0:
            raise ConfigError(f"{self.name}: sizes must be positive")
        if self.size_bytes % (self.line_bytes * self.assoc) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(f"{self.name}: number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    @property
    def num_lines(self) -> int:
        return self.num_sets * self.assoc


@dataclass(frozen=True)
class TlbConfig:
    """Geometry and timing of one TLB."""

    name: str
    entries: int
    assoc: int
    miss_latency: int
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.assoc <= 0:
            raise ConfigError(f"{self.name}: entries and assoc must be positive")
        if self.entries % self.assoc != 0:
            raise ConfigError(f"{self.name}: entries not divisible by assoc")

    @property
    def num_sets(self) -> int:
        return self.entries // self.assoc


@dataclass(frozen=True)
class BranchConfig:
    """Per-thread branch prediction resources (Table 1)."""

    gshare_entries: int = 2048
    history_bits: int = 10
    btb_entries: int = 2048
    btb_assoc: int = 4
    ras_entries: int = 32
    misprediction_penalty: int = 7  # pipeline depth: redirect refills the front end

    def __post_init__(self) -> None:
        if self.gshare_entries & (self.gshare_entries - 1):
            raise ConfigError("gshare_entries must be a power of two")
        if self.history_bits < 0 or self.history_bits > 30:
            raise ConfigError("history_bits out of range")


@dataclass(frozen=True)
class MachineConfig:
    """Complete configuration of the simulated SMT machine (Table 1)."""

    # Pipeline
    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    pipeline_depth: int = 7
    fetch_threads_per_cycle: int = 1
    """Threads fetched per cycle: 1 = ICOUNT1.8 (M-Sim's default fetch
    arrangement, used here as the baseline), 2 = ICOUNT2.8.  The 1.8 scheme
    throttles instruction supply on high-IPC mixes, which is what keeps the
    shared IQ from saturating on CPU-bound workloads — the precondition for
    the paper's Figure 1 ordering (memory-bound mixes have the higher IQ
    AVF)."""
    decode_latency: int = 3  # fetch -> rename latency (front-end stages)

    # Shared structures
    iq_entries: int = 96
    int_phys_regs: int = 160
    """Shared INT *rename* registers beyond the per-thread architectural
    backing.  The physical file is sized ``32 x threads + int_phys_regs``
    (M-Sim's scheme); the fixed rename pool is what threads contend for,
    which is the paper's Section 4.1 mechanism limiting per-thread ROB
    occupancy under SMT."""
    fp_phys_regs: int = 160
    """Shared FP rename registers beyond architectural backing (see above)."""

    iq_partitioned: bool = False
    """Statically partition the shared issue queue among contexts.

    The paper's Section 5 proposes "predefined static IQ partitions for each
    thread" as a reliability-aware resource-allocation scheme: a thread with
    a long dependence chain can no longer clog the whole IQ with stalled ACE
    bits.  When enabled, dispatch caps each thread at iq_entries/contexts.
    """

    # Per-thread structures
    rob_entries: int = 96
    lsq_entries: int = 48

    # Functional units: (count, latency); latency of 1 = fully pipelined ALU
    int_alus: int = 8
    int_mult_div: int = 4
    load_store_units: int = 4
    fp_alus: int = 8
    fp_mult_div: int = 4

    int_alu_latency: int = 1
    int_mult_latency: int = 3
    int_div_latency: int = 20
    fp_alu_latency: int = 2
    fp_mult_latency: int = 4
    fp_div_latency: int = 12
    agen_latency: int = 1

    branch: BranchConfig = field(default_factory=BranchConfig)

    # Memory hierarchy (Table 1)
    il1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "il1", 32 * 1024, 2, 32, hit_latency=1, ports=2, writeback=False
        )
    )
    dl1: CacheConfig = field(
        default_factory=lambda: CacheConfig("dl1", 64 * 1024, 4, 64, hit_latency=1, ports=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "l2", 2 * 1024 * 1024, 4, 128, hit_latency=12, ports=1, mshrs=16
        )
    )
    itlb: TlbConfig = field(default_factory=lambda: TlbConfig("itlb", 128, 4, miss_latency=200))
    dtlb: TlbConfig = field(default_factory=lambda: TlbConfig("dtlb", 256, 4, miss_latency=200))
    memory_latency: int = 200

    def __post_init__(self) -> None:
        for name in ("fetch_width", "issue_width", "commit_width", "iq_entries",
                     "rob_entries", "lsq_entries", "int_phys_regs", "fp_phys_regs"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.fetch_threads_per_cycle < 1:
            raise ConfigError("fetch_threads_per_cycle must be >= 1")
        if self.decode_latency < 1:
            raise ConfigError("decode_latency must be >= 1")

    def with_overrides(self, **kwargs: Any) -> "MachineConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = MachineConfig()


@dataclass(frozen=True)
class SimConfig:
    """Run-length and instrumentation knobs for one simulation."""

    max_instructions: int = 20_000
    """Total committed instructions (all threads) at which the run stops.

    The paper simulates 50M/100M/200M instructions for 2/4/8 contexts; this
    reproduction scales those counts down (see DESIGN.md) while preserving the
    2:4:8 proportionality via :func:`scaled_instruction_budget`.
    """

    max_cycles: int = 10_000_000
    """Safety valve: abort if the run exceeds this many cycles."""

    warmup_instructions: int = 0
    """Committed instructions to run before AVF/perf counters are reset."""

    functional_warmup: bool = True
    """Walk each trace's memory addresses and branches through the caches,
    TLBs and predictors (content only, zero cycles) before timed simulation.

    The paper fast-forwards each benchmark to its SimPoint (warming all
    state along the way) before detailed simulation; at reproduction scale
    this pass plays that role — without it, every run measures pure
    cold-start behaviour.
    """

    seed: int = 1

    record_intervals: bool = False
    """Keep every residency interval verbatim (not just the sums).

    Required by the fault-injection campaign (:mod:`repro.faultinject`),
    which replays the intervals to cross-validate the AVF ledgers.  Costs
    memory proportional to the instruction count; off by default.
    """

    phase_window_cycles: int = 0
    """Sample a per-structure AVF time series every this many cycles.

    0 disables phase tracking; see :mod:`repro.avf.phases`.
    """

    check_invariants: int = 0
    """Audit pipeline/ledger conservation laws every this many cycles.

    0 disables auditing.  N > 0 runs the :mod:`repro.audit` invariant
    checks every N cycles (plus a final pass, including the interval-replay
    cross-validation, after drain) and attaches an audit record to the
    result.  Auditing is observation-only: it never changes what the run
    measures, only whether drift is detected.
    """

    def __post_init__(self) -> None:
        if self.max_instructions <= 0:
            raise ConfigError("max_instructions must be positive")
        if self.max_cycles <= 0:
            raise ConfigError("max_cycles must be positive")
        if self.warmup_instructions < 0:
            raise ConfigError("warmup_instructions must be >= 0")
        if self.phase_window_cycles < 0:
            raise ConfigError("phase_window_cycles must be >= 0")
        if self.check_invariants < 0:
            raise ConfigError("check_invariants must be >= 0")


def scaled_instruction_budget(num_threads: int, base_per_2_threads: int = 10_000) -> int:
    """Instruction budget proportional to the paper's 50M/100M/200M scheme.

    The paper terminates runs at 50M, 100M and 200M total instructions for
    2-, 4- and 8-context workloads respectively, i.e. 25M per context.  This
    helper preserves that proportionality at reproduction scale.
    """
    if num_threads <= 0:
        raise ConfigError("num_threads must be positive")
    return base_per_2_threads * max(1, num_threads) // 2
