"""Merged physical register file with per-thread rename maps.

The shared rename pool (Table-1 machine: 160 INT + 160 FP) is the resource
whose contention throttles per-thread ROB occupancy under SMT — the paper's
Section 4.1 explanation for why ROB AVF *drops* in SMT mode.

Register AVF life cycle (paper Section 4.2): a register is un-ACE from
allocation until the producer's writeback (it holds no valid data), ACE from
writeback until its last read by an ACE consumer, and un-ACE again until it
is freed (when a younger writer of the same architectural register commits,
or on squash).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import StructureError
from repro.instrument import ResidencyProbe, Structure
from repro.isa.instruction import DynInstr
from repro.structures.strike import StrikeReceipt, burst_bits, cluster_token
from repro.workload.generator import FP_REG_BASE


class _PhysReg:
    """Lifetime metadata of one allocated physical register."""

    __slots__ = ("thread_id", "alloc_cycle", "written_cycle", "last_ace_read",
                 "ready", "tag")

    def __init__(self, thread_id: int, alloc_cycle: int) -> None:
        self.thread_id = thread_id
        self.alloc_cycle = alloc_cycle
        self.written_cycle = -1
        self.last_ace_read = -1
        self.ready = False
        self.tag = 0  # taint carried by the register's value (live injection)


class PhysicalRegisterFile:
    """Shared INT + FP physical register pool and per-thread rename maps.

    Physical registers are numbered 0..int_regs-1 (INT) and
    int_regs..int_regs+fp_regs-1 (FP).
    """

    def __init__(self, int_regs: int, fp_regs: int, num_threads: int,
                 probe: ResidencyProbe) -> None:
        if int_regs <= 0 or fp_regs <= 0:
            raise StructureError("register pool sizes must be positive")
        self._int_free: List[int] = list(range(int_regs - 1, -1, -1))
        self._fp_free: List[int] = list(range(int_regs + fp_regs - 1, int_regs - 1, -1))
        self._meta: Dict[int, _PhysReg] = {}
        self._rename: List[Dict[int, int]] = [dict() for _ in range(num_threads)]
        self._probe = probe
        self.int_regs = int_regs
        self.fp_regs = fp_regs

    # -- capacity ------------------------------------------------------------------

    def free_count(self, fp: bool) -> int:
        return len(self._fp_free if fp else self._int_free)

    def allocated_count(self) -> int:
        return len(self._meta)

    # -- rename --------------------------------------------------------------------

    def rename(self, instr: DynInstr, cycle: int) -> bool:
        """Rename ``instr``'s sources and destination; False on a stall.

        Sources that map to no in-flight producer read committed
        architectural state and are always ready (``None`` in ``phys_srcs``).
        """
        rmap = self._rename[instr.thread_id]
        needs_fp = instr.dest_reg is not None and instr.dest_reg >= FP_REG_BASE
        if instr.dest_reg is not None and self.free_count(needs_fp) == 0:
            return False
        instr.phys_srcs = tuple(rmap.get(src) for src in instr.src_regs)
        if instr.dest_reg is not None:
            phys = (self._fp_free if needs_fp else self._int_free).pop()
            self._meta[phys] = _PhysReg(instr.thread_id, cycle)
            instr.old_phys_dest = rmap.get(instr.dest_reg)
            instr.phys_dest = phys
            rmap[instr.dest_reg] = phys
        return True

    # -- dataflow ------------------------------------------------------------------

    def is_ready(self, phys: Optional[int]) -> bool:
        """True when a renamed source value is available for issue."""
        if phys is None:
            return True  # committed architectural state
        meta = self._meta.get(phys)
        return meta is None or meta.ready

    def sources_ready(self, instr: DynInstr) -> bool:
        return all(self.is_ready(p) for p in instr.phys_srcs)

    def mark_written(self, phys: int, cycle: int, tag: int = 0) -> None:
        """Producer writeback: the register now holds valid data.

        ``tag`` is the producer's taint (live injection); the write
        replaces the register's previous contents, so a pre-writeback
        strike on this register is masked exactly as in real hardware.
        """
        meta = self._meta.get(phys)
        if meta is None:
            raise StructureError(f"writeback to unallocated phys reg {phys}")
        meta.ready = True
        meta.tag = tag
        if meta.written_cycle < 0:
            meta.written_cycle = cycle

    def tag_of(self, phys: int) -> int:
        """The taint a consumer picks up by reading ``phys`` (0 = clean)."""
        meta = self._meta.get(phys)
        return meta.tag if meta is not None else 0

    def note_read(self, phys: Optional[int], cycle: int, ace_reader: bool) -> None:
        """A consumer issued and read this register."""
        if phys is None:
            return
        meta = self._meta.get(phys)
        if meta is not None and ace_reader and cycle > meta.last_ace_read:
            meta.last_ace_read = cycle

    # -- deallocation ----------------------------------------------------------------

    def free(self, phys: int, cycle: int) -> None:
        """Release a register and account its full lifetime to the AVF engine."""
        meta = self._meta.pop(phys, None)
        if meta is None:
            raise StructureError(f"double free of phys reg {phys}")
        ace = meta.last_ace_read > meta.written_cycle >= 0
        self._probe.reg_lifetime(meta.thread_id, meta.alloc_cycle,
                                 meta.written_cycle, meta.last_ace_read,
                                 cycle, ace)
        (self._fp_free if phys >= self.int_regs else self._int_free).append(phys)

    def on_commit(self, instr: DynInstr, cycle: int) -> None:
        """Free the previous mapping of the committed instruction's dest reg."""
        if instr.old_phys_dest is not None:
            self.free(instr.old_phys_dest, cycle)

    def on_squash(self, instr: DynInstr, cycle: int) -> None:
        """Undo ``instr``'s rename (must be called in reverse program order)."""
        if instr.phys_dest is None:
            return
        rmap = self._rename[instr.thread_id]
        if instr.old_phys_dest is None:
            rmap.pop(instr.dest_reg, None)
        else:
            rmap[instr.dest_reg] = instr.old_phys_dest
        self.free(instr.phys_dest, cycle)
        instr.phys_dest = None

    def drain(self, cycle: int) -> None:
        """Close all live register lifetimes at end of simulation."""
        for phys in list(self._meta):
            self.free(phys, cycle)
        for rmap in self._rename:
            rmap.clear()

    # -- live fault injection ----------------------------------------------------

    def inject_bit(self, phys: int, bit: int, length: int = 1) -> StrikeReceipt:
        """Flip ``length`` adjacent data bits of physical register
        ``phys``, clipped at the word boundary; see strike.py.

        A free register is idle (nothing lives there); an allocated one is
        tainted in place — if the producer has not written back yet, the
        eventual write overwrites the taint (masked, matching the ledger's
        un-ACE allocation window), and after the last read the taint flows
        nowhere.
        """
        meta = self._meta.get(phys)
        if meta is None:
            return StrikeReceipt.idle(f"REG[p{phys}]")
        receipt = StrikeReceipt(True, f"REG[p{phys}]=t{meta.thread_id}", "value")
        receipt.record(meta, "tag")
        burst = burst_bits(Structure.REG, bit, length)
        meta.tag ^= cluster_token(Structure.REG, burst)
        return receipt
