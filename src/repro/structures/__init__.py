"""Pipeline storage structures: shared IQ, register file and FU pool; per-thread ROB and LSQ.

Each structure reports occupancy intervals to the AVF engine at deallocation
time, when the final ACE status of the occupant (committed vs squashed,
value read vs dead) is known.
"""

from repro.structures.regfile import PhysicalRegisterFile
from repro.structures.rob import ReorderBuffer
from repro.structures.issue_queue import SharedIssueQueue
from repro.structures.lsq import LoadStoreQueue
from repro.structures.functional_units import FunctionalUnitPool

__all__ = [
    "PhysicalRegisterFile",
    "ReorderBuffer",
    "SharedIssueQueue",
    "LoadStoreQueue",
    "FunctionalUnitPool",
]
