"""Bit-level strike primitives shared by the injectable structures.

Live fault injection (:mod:`repro.faultinject.live`) flips one bit of one
entry of one structure mid-run.  Each structure exposes an ``inject_bit``
mutation hook; this module holds what those hooks share:

* the per-entry *field layout* mapping a sampled bit index to a semantic
  field (a payload bit, a scheduler wakeup bit, a completion-status bit,
  an address bit), kept width-for-width equal to the entry widths the ACE
  ledger aggregates with (:mod:`repro.avf.bits` — a test asserts the sums
  match, since this layer must not import ``repro.avf``);
* :func:`payload_token` — the nonzero 64-bit taint constant a payload flip
  XORs into the victim's ``value_tag``, unique per (structure, bit) so
  independent strikes can never cancel;
* :class:`StrikeReceipt` — the undo record a hook returns, so a campaign
  can restore shared trace objects (e.g. a flipped ``mem_addr``) after the
  faulty run and reuse them for the next strike.

The simulator carries no data values (it is trace-driven), so a payload
flip is modelled as *taint*: the token propagates through register reads,
store-to-load forwarding and memory exactly like a corrupted value would,
and the architectural digest at commit decides whether it ever reached
architecturally required state.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import StructureError
from repro.instrument.structures import Structure

_M64 = (1 << 64) - 1

#: Field layout per injectable structure: ordered (field, width) pairs.
#: Widths sum to the ledger's per-entry bit counts (repro.avf.bits); the
#: non-payload minority models control state whose corruption perturbs
#: scheduling (wakeup/status bits) rather than data — the bits that turn
#: into hangs instead of SDC.
ENTRY_LAYOUT: Dict[Structure, Tuple[Tuple[str, int], ...]] = {
    Structure.IQ: (("value", 60), ("sched", 4)),
    Structure.ROB: (("value", 66), ("status", 6)),
    Structure.LSQ_TAG: (("addr", 44), ("meta", 8)),
    Structure.LSQ_DATA: (("value", 64),),
    Structure.REG: (("value", 64),),
    Structure.FU: (("value", 208),),
}


def entry_bits(structure: Structure) -> int:
    """Bits per entry of ``structure`` (the strike sampler's bit range)."""
    layout = ENTRY_LAYOUT.get(structure)
    if layout is None:
        raise StructureError(f"no strike layout for {structure}")
    return sum(width for _field, width in layout)


def locate_field(structure: Structure, bit: int) -> Tuple[str, int]:
    """Map a bit index to its (field name, offset within the field)."""
    remaining = bit
    for field, width in ENTRY_LAYOUT[structure]:
        if remaining < width:
            return field, remaining
        remaining -= width
    raise StructureError(
        f"bit {bit} outside {structure.value} entry "
        f"({entry_bits(structure)} bits)")


def payload_token(structure: Structure, bit: int) -> int:
    """Deterministic nonzero 64-bit taint token for one (structure, bit).

    splitmix64 finalizer over a structure/bit seed: well-spread, cheap,
    and forced odd so no token is ever zero (a zero token would make the
    flip invisible to the digest).
    """
    seed = (_STRUCT_ID[structure] << 16) | (bit & 0xFFFF)
    z = (seed + 0x9E3779B97F4A7C15) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return ((z ^ (z >> 31)) | 1) & _M64


_STRUCT_ID = {s: i for i, s in enumerate(ENTRY_LAYOUT)}


class StrikeReceipt:
    """What one ``inject_bit`` call did, and how to take it back.

    ``applied`` is False when the struck slot held nothing (the strike is
    masked by idleness before the run even continues).  ``undo()``
    restores every recorded attribute in reverse order — required because
    campaigns share trace objects across strikes, and a flip may land on
    a trace-owned field (``mem_addr``) that per-fetch pipeline resets do
    not cover.
    """

    __slots__ = ("applied", "target", "field", "_undo")

    def __init__(self, applied: bool, target: str, field: str = "") -> None:
        self.applied = applied
        self.target = target
        self.field = field
        self._undo: List[Tuple[object, str, object]] = []

    @classmethod
    def idle(cls, target: str) -> "StrikeReceipt":
        return cls(applied=False, target=target)

    def record(self, obj: object, attr: str) -> None:
        """Snapshot ``obj.attr`` for undo; call before mutating it."""
        self._undo.append((obj, attr, getattr(obj, attr)))

    def undo(self) -> None:
        for obj, attr, value in reversed(self._undo):
            setattr(obj, attr, value)
        self._undo.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.field or "idle"
        return f"StrikeReceipt({self.target}, {state})"
