"""Bit-level strike primitives shared by the injectable structures.

Live fault injection (:mod:`repro.faultinject.live`) flips one bit of one
entry of one structure mid-run.  Each structure exposes an ``inject_bit``
mutation hook; this module holds what those hooks share:

* the per-entry *field layout* mapping a sampled bit index to a semantic
  field (a payload bit, a scheduler wakeup bit, a completion-status bit,
  an address bit), kept width-for-width equal to the entry widths the ACE
  ledger aggregates with (:mod:`repro.avf.bits` — a test asserts the sums
  match, since this layer must not import ``repro.avf``);
* :func:`payload_token` — the nonzero 64-bit taint constant a payload flip
  XORs into the victim's ``value_tag``, unique per (structure, bit) so
  independent strikes can never cancel;
* :class:`StrikeReceipt` — the undo record a hook returns, so a campaign
  can restore shared trace objects (e.g. a flipped ``mem_addr``) after the
  faulty run and reuse them for the next strike.

The simulator carries no data values (it is trace-driven), so a payload
flip is modelled as *taint*: the token propagates through register reads,
store-to-load forwarding and memory exactly like a corrupted value would,
and the architectural digest at commit decides whether it ever reached
architecturally required state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError, StructureError
from repro.instrument.structures import Structure

_M64 = (1 << 64) - 1

#: Field layout per injectable structure: ordered (field, width) pairs.
#: Widths sum to the ledger's per-entry bit counts (repro.avf.bits); the
#: non-payload minority models control state whose corruption perturbs
#: scheduling (wakeup/status bits) rather than data — the bits that turn
#: into hangs instead of SDC.
ENTRY_LAYOUT: Dict[Structure, Tuple[Tuple[str, int], ...]] = {
    Structure.IQ: (("value", 60), ("sched", 4)),
    Structure.ROB: (("value", 66), ("status", 6)),
    Structure.LSQ_TAG: (("addr", 44), ("meta", 8)),
    Structure.LSQ_DATA: (("value", 64),),
    Structure.REG: (("value", 64),),
    Structure.FU: (("value", 208),),
}


def entry_bits(structure: Structure) -> int:
    """Bits per entry of ``structure`` (the strike sampler's bit range)."""
    layout = ENTRY_LAYOUT.get(structure)
    if layout is None:
        raise StructureError(f"no strike layout for {structure}")
    return sum(width for _field, width in layout)


def locate_field(structure: Structure, bit: int) -> Tuple[str, int]:
    """Map a bit index to its (field name, offset within the field)."""
    remaining = bit
    for field, width in ENTRY_LAYOUT[structure]:
        if remaining < width:
            return field, remaining
        remaining -= width
    raise StructureError(
        f"bit {bit} outside {structure.value} entry "
        f"({entry_bits(structure)} bits)")


#: Physical upper bound of the clustered-MBU model: neutron-beam data says
#: adjacent-bit bursts beyond 3 bits are rare enough to ignore at this
#: modelling fidelity, and the protection lattice's strongest code
#: (DEC-BCH) is specified against exactly this cap.
MAX_CLUSTER_LEN = 3

#: Default cluster-length mix when MBU mode is on: mostly single-bit with
#: a heavy-ion style tail, the shape of the related repo's beam fits.
DEFAULT_MBU_WEIGHTS: Tuple[float, ...] = (0.7, 0.2, 0.1)


def burst_bits(structure: Structure, bit: int,
               length: int) -> Tuple[int, ...]:
    """The adjacent ascending bits struck by a length-``length`` burst
    starting at ``bit``, clipped at the containing field's boundary.

    Fields are physically distinct storage (a scheduler wakeup bit does
    not abut the value payload in the array), so a burst never crosses a
    field boundary — which also guarantees it never crosses an entry
    boundary.  The *effective* cluster length near a boundary is shorter
    than the sampled one; protection resolution uses the effective value.
    """
    if length < 1:
        raise ConfigError(f"cluster length must be >= 1, got {length}")
    field, offset = locate_field(structure, bit)
    for name, width in ENTRY_LAYOUT[structure]:
        if name == field:
            room = width - offset
            break
    else:  # pragma: no cover - locate_field already validated the bit
        raise StructureError(f"field {field} missing from layout")
    return tuple(range(bit, bit + min(length, room)))


@dataclass(frozen=True)
class MbuConfig:
    """Cluster-length distribution for multi-bit upset sampling.

    ``max_len=1`` (the default) is the exact pre-MBU single-bit model:
    the strike sampler draws no extra randomness, keeping default-path
    records byte-identical to the historical goldens.  With
    ``max_len>1``, each strike draws a cluster length from ``weights``
    (normalised over lengths ``1..max_len``) *after* its cycle/slot/bit
    draws, on the same per-strike ``SeedSequence`` substream — so MBU
    campaigns stay byte-identical at any worker count too.
    """

    max_len: int = 1
    weights: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not 1 <= self.max_len <= MAX_CLUSTER_LEN:
            raise ConfigError(
                f"MBU cluster length must be 1..{MAX_CLUSTER_LEN}, "
                f"got {self.max_len}")
        weights = tuple(float(w) for w in self.weights) \
            or DEFAULT_MBU_WEIGHTS[:self.max_len]
        if len(weights) != self.max_len:
            raise ConfigError(
                f"MBU needs {self.max_len} length weights, "
                f"got {len(weights)}")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigError("MBU length weights must be non-negative "
                              "and sum to a positive value")
        total = sum(weights)
        object.__setattr__(
            self, "weights", tuple(w / total for w in weights))

    @property
    def enabled(self) -> bool:
        return self.max_len > 1

    def length_probs(self) -> Dict[int, float]:
        return {i + 1: w for i, w in enumerate(self.weights)}

    def sample_length(self, rng) -> int:
        """Draw one cluster length (1-based) from ``weights`` using a
        single uniform variate from ``rng`` (numpy ``Generator``)."""
        u = float(rng.random())
        acc = 0.0
        for i, w in enumerate(self.weights):
            acc += w
            if u < acc:
                return i + 1
        return self.max_len

    def to_payload(self) -> Dict[str, object]:
        return {"max_len": self.max_len, "weights": list(self.weights)}

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "MbuConfig":
        return cls(max_len=int(payload.get("max_len", 1)),
                   weights=tuple(payload.get("weights", ())))


def effective_length_distribution(structure: Structure,
                                  mbu: MbuConfig) -> Dict[int, float]:
    """Cluster-length mix *after* field-boundary clipping, for a start
    bit uniform over the entry.

    This is what the analytic frontier must integrate over to agree with
    live MBU campaigns: e.g. on the IQ (60-bit value + 4-bit sched
    fields) 2 of 64 start bits clip a sampled 3-burst to 2 and another 2
    clip any multi-bit burst to 1, so the effective mix is strictly
    shorter-tailed than the sampled one.
    """
    bits = entry_bits(structure)
    probs: Dict[int, float] = {}
    for sampled, weight in mbu.length_probs().items():
        if weight == 0.0:
            continue
        for bit in range(bits):
            effective = len(burst_bits(structure, bit, sampled))
            probs[effective] = probs.get(effective, 0.0) \
                + weight / bits
    return probs


def payload_token(structure: Structure, bit: int) -> int:
    """Deterministic nonzero 64-bit taint token for one (structure, bit).

    splitmix64 finalizer over a structure/bit seed: well-spread, cheap,
    and forced odd so no token is ever zero (a zero token would make the
    flip invisible to the digest).
    """
    seed = (_STRUCT_ID[structure] << 16) | (bit & 0xFFFF)
    z = (seed + 0x9E3779B97F4A7C15) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return ((z ^ (z >> 31)) | 1) & _M64


_STRUCT_ID = {s: i for i, s in enumerate(ENTRY_LAYOUT)}


def cluster_token(structure: Structure, bits: Tuple[int, ...]) -> int:
    """Combined taint token of an adjacent-bit burst: the XOR of the
    per-bit tokens, with a nonzero fallback should the XOR ever cancel
    (astronomically unlikely, but a zero token would make the whole
    burst invisible to the architectural digest)."""
    token = 0
    for bit in bits:
        token ^= payload_token(structure, bit)
    return token or payload_token(structure, bits[0])


class StrikeReceipt:
    """What one ``inject_bit`` call did, and how to take it back.

    ``applied`` is False when the struck slot held nothing (the strike is
    masked by idleness before the run even continues).  ``undo()``
    restores every recorded attribute in reverse order — required because
    campaigns share trace objects across strikes, and a flip may land on
    a trace-owned field (``mem_addr``) that per-fetch pipeline resets do
    not cover.
    """

    __slots__ = ("applied", "target", "field", "_undo")

    def __init__(self, applied: bool, target: str, field: str = "") -> None:
        self.applied = applied
        self.target = target
        self.field = field
        self._undo: List[Tuple[object, str, object]] = []

    @classmethod
    def idle(cls, target: str) -> "StrikeReceipt":
        return cls(applied=False, target=target)

    def record(self, obj: object, attr: str) -> None:
        """Snapshot ``obj.attr`` for undo; call before mutating it."""
        self._undo.append((obj, attr, getattr(obj, attr)))

    def undo(self) -> None:
        for obj, attr, value in reversed(self._undo):
            setattr(obj, attr, value)
        self._undo.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.field or "idle"
        return f"StrikeReceipt({self.target}, {state})"
