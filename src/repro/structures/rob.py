"""Per-thread reorder buffer.

Entries live from dispatch to commit (or squash); the occupancy interval is
reported to the AVF engine at removal, when the entry's final ACE status is
known.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import StructureError
from repro.instrument import ResidencyProbe, Structure
from repro.isa.instruction import DynInstr
from repro.structures.strike import (StrikeReceipt, burst_bits, cluster_token,
                                     locate_field)


class ReorderBuffer:
    """In-order window of one thread's in-flight instructions."""

    def __init__(self, thread_id: int, capacity: int,
                 probe: ResidencyProbe) -> None:
        if capacity <= 0:
            raise StructureError("ROB capacity must be positive")
        self.thread_id = thread_id
        self.capacity = capacity
        self._entries: Deque[DynInstr] = deque()
        self._probe = probe
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def head(self) -> Optional[DynInstr]:
        return self._entries[0] if self._entries else None

    def push(self, instr: DynInstr, cycle: int) -> None:
        if self.full:
            raise StructureError(f"ROB[t{self.thread_id}] overflow")
        instr.rob_index = len(self._entries)
        self._entries.append(instr)
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)

    def pop_head(self, cycle: int) -> DynInstr:
        """Commit the oldest instruction and account its ROB residency."""
        if not self._entries:
            raise StructureError(f"ROB[t{self.thread_id}] underflow")
        instr = self._entries.popleft()
        self._accrue(instr, cycle)
        return instr

    def squash_younger_than(self, boundary_stamp: int, cycle: int) -> List[DynInstr]:
        """Remove entries fetched after ``boundary_stamp``, youngest first.

        Returns the squashed instructions in reverse program order — the
        order required for rename-map restoration.
        """
        squashed: List[DynInstr] = []
        while self._entries and self._entries[-1].fetch_stamp > boundary_stamp:
            instr = self._entries.pop()
            instr.squashed = True
            self._accrue(instr, cycle)
            squashed.append(instr)
        return squashed

    def drain(self, cycle: int) -> None:
        """Account all remaining entries at end of simulation."""
        while self._entries:
            self._accrue(self._entries.popleft(), cycle)

    def _accrue(self, instr: DynInstr, cycle: int) -> None:
        self._probe.occupy(Structure.ROB, self.thread_id,
                           instr.renamed_at, cycle, instr.is_ace)

    # -- live fault injection ----------------------------------------------------

    def inject_bit(self, index: int, bit: int, cycle: int,
                   length: int = 1) -> StrikeReceipt:
        """Flip ``length`` adjacent bits of ROB entry ``index`` (0 =
        head), clipped at the field boundary; see strike.py.

        Payload bits taint the entry's value/identity; the status bits
        toggle its completion flag — un-completing a finished entry strands
        the commit head (a hang), prematurely completing an unexecuted one
        lets it commit or collide with its own later writeback.  A status
        burst toggles the flag exactly once (the flag is one latch bit
        rendered as several encoded status bits; re-toggling would cancel
        the strike rather than widen it).
        """
        if index >= len(self._entries):
            return StrikeReceipt.idle(f"ROB[t{self.thread_id}][{index}]")
        instr = self._entries[index]
        field, _offset = locate_field(Structure.ROB, bit)
        receipt = StrikeReceipt(
            True, f"ROB[t{self.thread_id}][{index}]=#{instr.seq}", field)
        if field == "status":
            receipt.record(instr, "completed_at")
            instr.completed_at = -1 if instr.completed_at >= 0 else cycle
        else:
            receipt.record(instr, "value_tag")
            burst = burst_bits(Structure.ROB, bit, length)
            instr.value_tag ^= cluster_token(Structure.ROB, burst)
        return receipt
