"""Shared functional-unit pool (Table 1: 8 I-ALU, 4 I-MUL/DIV, 4 LD/ST AGUs,
8 FP-ALU, 4 FP-MUL/DIV/SQRT).

Single-cycle units are fully pipelined (busy one cycle per operation);
multi-cycle units are occupied for their whole latency.  Every busy
unit-cycle is reported to the AVF engine: a unit computing an ACE
instruction exposes ACE latch bits that cycle, an idle or wrong-path unit
does not — which is why FU AVF tracks utilisation in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import MachineConfig
from repro.instrument import ResidencyProbe, Structure
from repro.isa.instruction import DynInstr
from repro.isa.opcodes import FUType, OpClass, execution_latency, fu_type_for
from repro.structures.strike import StrikeReceipt, burst_bits, cluster_token


class FunctionalUnitPool:
    """Occupancy-tracked pool of all execution resources."""

    def __init__(self, config: MachineConfig, probe: ResidencyProbe) -> None:
        self._config = config
        self._probe = probe
        self._counts: Dict[FUType, int] = {
            FUType.INT_ALU: config.int_alus,
            FUType.INT_MULDIV: config.int_mult_div,
            FUType.LOAD_STORE: config.load_store_units,
            FUType.FP_ALU: config.fp_alus,
            FUType.FP_MULDIV: config.fp_mult_div,
        }
        # Busy reservations: (release_cycle, instr) per unit type.
        self._busy: Dict[FUType, List[Tuple[int, DynInstr]]] = {
            fu: [] for fu in FUType
        }
        self.issued_ops = 0
        self.busy_unit_cycles = 0

    def latency_of(self, op: OpClass) -> int:
        return execution_latency(op, self._config)

    def available(self, fu: FUType) -> int:
        return self._counts[fu] - len(self._busy[fu])

    def can_issue(self, op: OpClass) -> bool:
        return self.available(fu_type_for(op)) > 0

    def issue(self, instr: DynInstr, cycle: int) -> int:
        """Reserve a unit for ``instr``; returns its execution latency."""
        fu = fu_type_for(instr.op)
        latency = self.latency_of(instr.op)
        self._busy[fu].append((cycle + latency, instr))
        self.issued_ops += 1
        return latency

    def tick(self, cycle: int) -> None:
        """Account this cycle's busy units and release finished reservations.

        Called once per cycle after issue, so a unit granted this cycle also
        counts as busy this cycle.
        """
        for fu, reservations in self._busy.items():
            if not reservations:
                continue
            for release, instr in reservations:
                self._probe.fu_busy_cycle(instr.thread_id, instr.is_ace, cycle)
                self.busy_unit_cycles += 1
            self._busy[fu] = [r for r in reservations if r[0] > cycle + 1]

    @property
    def busy_count(self) -> int:
        """Units currently holding a reservation (occupancy telemetry)."""
        return sum(len(r) for r in self._busy.values())

    @property
    def total_units(self) -> int:
        return sum(self._counts.values())

    # -- live fault injection ----------------------------------------------------

    def inject_bit(self, slot: int, bit: int, length: int = 1) -> StrikeReceipt:
        """Flip ``length`` adjacent latch bits of pool unit ``slot``,
        clipped at the latch-word boundary; see strike.py.

        Units are numbered across the pool in Table-1 order (I-ALUs first,
        FP-MUL/DIV last).  A unit holding a reservation has the in-flight
        operation's state in its latches, so the flip taints that
        instruction's result; an idle unit exposes nothing.
        """
        remaining = slot
        for fu, count in self._counts.items():
            if remaining >= count:
                remaining -= count
                continue
            reservations = self._busy[fu]
            if remaining >= len(reservations):
                return StrikeReceipt.idle(f"FU[{fu.name}#{remaining}]")
            instr = reservations[remaining][1]
            receipt = StrikeReceipt(
                True, f"FU[{fu.name}#{remaining}]=t{instr.thread_id}#{instr.seq}",
                "value")
            receipt.record(instr, "value_tag")
            burst = burst_bits(Structure.FU, bit, length)
            instr.value_tag ^= cluster_token(Structure.FU, burst)
            return receipt
        return StrikeReceipt.idle(f"FU[{slot}]")
