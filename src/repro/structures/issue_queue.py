"""Shared out-of-order issue queue.

All SMT contexts dispatch into a single 96-entry window; per-thread entry
counts are maintained for the fetch policies (ICOUNT needs them) and for
per-thread AVF attribution.  The paper identifies the IQ as the single most
vulnerable structure under SMT precisely because multithreading keeps these
shared entries full of ACE bits.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from repro.errors import StructureError
from repro.instrument import ResidencyProbe, Structure
from repro.isa.instruction import DynInstr
from repro.structures.strike import (StrikeReceipt, burst_bits, cluster_token,
                                     locate_field)


class SharedIssueQueue:
    """Capacity-bounded shared instruction window."""

    def __init__(self, capacity: int, probe: ResidencyProbe) -> None:
        if capacity <= 0:
            raise StructureError("IQ capacity must be positive")
        self.capacity = capacity
        self._entries: List[DynInstr] = []
        self._per_thread: Dict[int, int] = {}
        self._probe = probe
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def thread_count(self, thread_id: int) -> int:
        return self._per_thread.get(thread_id, 0)

    def add(self, instr: DynInstr, cycle: int) -> None:
        if self.full:
            raise StructureError("IQ overflow")
        self._entries.append(instr)
        self._per_thread[instr.thread_id] = self._per_thread.get(instr.thread_id, 0) + 1
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)

    def select_ready(self, is_ready: Callable[[DynInstr], bool],
                     limit: int) -> List[DynInstr]:
        """Oldest-first selection of up to ``limit`` issue-ready entries.

        Entries are kept in dispatch order, so a front-to-back scan is
        oldest-first across all threads (M-Sim's global age-ordered select).
        """
        chosen: List[DynInstr] = []
        for instr in self._entries:
            if len(chosen) >= limit:
                break
            if is_ready(instr):
                chosen.append(instr)
        return chosen

    def remove_issued(self, instr: DynInstr, cycle: int) -> None:
        """Entry leaves the window at issue; account its residency."""
        self._remove(instr, cycle)

    def squash_thread(self, thread_id: int, boundary_stamp: int, cycle: int) -> int:
        """Drop this thread's entries fetched after ``boundary_stamp``."""
        doomed = [e for e in self._entries
                  if e.thread_id == thread_id and e.fetch_stamp > boundary_stamp]
        for instr in doomed:
            instr.squashed = True
            self._remove(instr, cycle)
        return len(doomed)

    def drain(self, cycle: int) -> None:
        for instr in list(self._entries):
            self._remove(instr, cycle)

    def _remove(self, instr: DynInstr, cycle: int) -> None:
        self._entries.remove(instr)
        self._per_thread[instr.thread_id] -= 1
        self._probe.occupy(Structure.IQ, instr.thread_id,
                           instr.renamed_at, cycle, instr.is_ace)

    def entries(self) -> Iterable[DynInstr]:
        return tuple(self._entries)

    # -- live fault injection ----------------------------------------------------

    def inject_bit(self, slot: int, bit: int, length: int = 1) -> StrikeReceipt:
        """Flip ``length`` adjacent bits of IQ entry ``slot`` (dispatch
        order), clipped at the field boundary; see strike.py.

        Payload bits taint the waiting instruction's value; the scheduler
        bits flip its wakeup state (``pending_srcs``), which can issue an
        operand-less instruction early or strand one forever — the live
        model's source of IQ-induced hangs.  A multi-bit burst stays
        within one field, so it either widens the taint or folds several
        wakeup flips together.
        """
        if slot >= len(self._entries):
            return StrikeReceipt.idle(f"IQ[{slot}]")
        instr = self._entries[slot]
        field, offset = locate_field(Structure.IQ, bit)
        burst = burst_bits(Structure.IQ, bit, length)
        receipt = StrikeReceipt(True, f"IQ[{slot}]=t{instr.thread_id}#{instr.seq}",
                                field)
        if field == "sched":
            receipt.record(instr, "pending_srcs")
            flips = 0
            for i in range(len(burst)):
                flips ^= 1 + ((offset + i) & 1)
            instr.pending_srcs ^= flips or 1 + (offset & 1)
        else:
            receipt.record(instr, "value_tag")
            instr.value_tag ^= cluster_token(Structure.IQ, burst)
        return receipt
