"""Per-thread load/store queue with exact store-to-load forwarding.

The trace generator knows every memory address up front, so disambiguation
is exact: a load forwards from the youngest older store to the same aligned
word, if any, and otherwise accesses the DL1.

AVF model: each entry has an address/tag half (ACE from dispatch until
deallocation — the address steers the access and a strike redirects it) and
a data half (ACE once the value is present: from completion for loads, from
data-ready for stores, until deallocation).  Wrong-path and squashed entries
are un-ACE throughout.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import StructureError
from repro.instrument import ResidencyProbe, Structure
from repro.isa.instruction import DynInstr
from repro.structures.strike import (StrikeReceipt, burst_bits, cluster_token,
                                     locate_field)

_WORD_MASK = ~0x7  # forwarding granularity: aligned 8-byte words


class LoadStoreQueue:
    """One thread's in-order window of in-flight memory operations."""

    def __init__(self, thread_id: int, capacity: int,
                 probe: ResidencyProbe) -> None:
        if capacity <= 0:
            raise StructureError("LSQ capacity must be positive")
        self.thread_id = thread_id
        self.capacity = capacity
        self._entries: Deque[DynInstr] = deque()
        self._probe = probe
        self.forwards = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def add(self, instr: DynInstr, cycle: int) -> None:
        if self.full:
            raise StructureError(f"LSQ[t{self.thread_id}] overflow")
        self._entries.append(instr)
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)

    def forwarding_store(self, load: DynInstr) -> Optional[DynInstr]:
        """Youngest older store to the same aligned word, or None."""
        addr = load.mem_addr & _WORD_MASK
        for entry in reversed(self._entries):
            if entry.fetch_stamp >= load.fetch_stamp:
                continue
            if entry.is_store and (entry.mem_addr & _WORD_MASK) == addr:
                return entry
        return None

    def remove_committed(self, instr: DynInstr, cycle: int) -> None:
        """Entry leaves at commit (head of the queue in program order)."""
        if not self._entries or self._entries[0] is not instr:
            raise StructureError(f"LSQ[t{self.thread_id}] commit out of order")
        self._entries.popleft()
        self._accrue(instr, cycle)

    def squash_younger_than(self, boundary_stamp: int, cycle: int) -> List[DynInstr]:
        squashed: List[DynInstr] = []
        while self._entries and self._entries[-1].fetch_stamp > boundary_stamp:
            instr = self._entries.pop()
            instr.squashed = True
            self._accrue(instr, cycle)
            squashed.append(instr)
        return squashed

    def drain(self, cycle: int) -> None:
        while self._entries:
            self._accrue(self._entries.popleft(), cycle)

    def _accrue(self, instr: DynInstr, cycle: int) -> None:
        ace = instr.is_ace
        self._probe.occupy(Structure.LSQ_TAG, self.thread_id,
                           instr.renamed_at, cycle, ace)
        # The data half holds a valid value only once it has been produced.
        data_start = instr.completed_at if instr.completed_at >= 0 else cycle
        self._probe.occupy(Structure.LSQ_DATA, self.thread_id,
                           data_start, cycle, ace)
        if instr.completed_at >= 0:
            self._probe.occupy(Structure.LSQ_DATA, self.thread_id,
                               instr.renamed_at, instr.completed_at, False)

    # -- live fault injection ----------------------------------------------------

    def inject_bit(self, index: int, bit: int,
                   structure: Structure, length: int = 1) -> StrikeReceipt:
        """Flip ``length`` adjacent bits of LSQ entry ``index`` (0 =
        oldest), clipped at the field boundary; see strike.py.

        The tag half's address bits really flip ``mem_addr`` (redirecting
        the access and store-to-load forwarding) *and* taint the value —
        an access to the wrong address is architecturally wrong data.  The
        data half holds a valid word only once the operation has produced
        it (``completed_at``), mirroring the ledger's un-ACE window; before
        that the flip lands in garbage and is left unapplied-in-effect.
        """
        if index >= len(self._entries):
            half = "TAG" if structure is Structure.LSQ_TAG else "DATA"
            return StrikeReceipt.idle(f"LSQ_{half}[t{self.thread_id}][{index}]")
        instr = self._entries[index]
        field, offset = locate_field(structure, bit)
        burst = burst_bits(structure, bit, length)
        receipt = StrikeReceipt(
            True, f"{structure.value}[t{self.thread_id}][{index}]=#{instr.seq}",
            field)
        if structure is Structure.LSQ_DATA and instr.completed_at < 0:
            receipt.field = "value (not yet valid)"
            return receipt
        if field == "addr":
            receipt.record(instr, "mem_addr")
            for i in range(len(burst)):
                instr.mem_addr ^= 1 << (offset + i)
        receipt.record(instr, "value_tag")
        instr.value_tag ^= cluster_token(structure, burst)
        return receipt
