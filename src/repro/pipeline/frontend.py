"""Per-thread front-end and private-structure state."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.branch.unit import BranchUnit
from repro.config import MachineConfig
from repro.instrument import ResidencyProbe
from repro.isa.instruction import DynInstr
from repro.structures.lsq import LoadStoreQueue
from repro.structures.rob import ReorderBuffer
from repro.workload.address_stream import THREAD_ADDRESS_SPACE
from repro.workload.generator import ThreadTrace, WrongPathSynthesizer

#: Front-end buffer depth: how many decoded instructions may queue between
#: fetch and rename (a few fetch blocks deep).
DECODE_BUFFER_ENTRIES = 32


class ThreadContext:
    """Everything one SMT context owns privately."""

    def __init__(self, thread_id: int, trace: ThreadTrace, config: MachineConfig,
                 probe: ResidencyProbe, seed: int) -> None:
        self.id = thread_id
        self.trace = trace
        self.config = config
        self.branch_unit = BranchUnit(config.branch)
        self.rob = ReorderBuffer(thread_id, config.rob_entries, probe)
        self.lsq = LoadStoreQueue(thread_id, config.lsq_entries, probe)
        self.synth = WrongPathSynthesizer(trace.profile, thread_id, seed)

        # (rename-ready cycle, instr) pairs in fetch order.
        self.decode_queue: Deque[Tuple[int, DynInstr]] = deque()

        self.fetch_index = 0             # next correct-path trace instruction
        self.next_fetch_stamp = 0        # monotonic per-thread fetch order
        self.fetch_blocked_until = 0     # I-cache/redirect stall
        # Fetch line buffer: the line whose fill this thread last waited on.
        # When the fill returns, the front end consumes it from this buffer
        # rather than re-probing the IL1 — without it, threads whose hot
        # lines alias into one set can livelock by evicting each other
        # between retry attempts.
        self.line_buffer = -1
        self.wrong_path = False
        self.wrong_pc = 0
        self.pending_branch: Optional[DynInstr] = None
        # Wrong-path PCs wrap within the program's code footprint: a real
        # wrong path executes real (warm) code, not unmapped address space.
        self._code_base = thread_id * THREAD_ADDRESS_SPACE
        self._code_bytes = max(trace.profile.code_bytes, 256)

        self.outstanding_l1d = 0         # executed loads waiting on a DL1 miss
        self.outstanding_l2 = 0          # executed loads waiting on an L2 miss

        self.committed = 0
        self.fetched = 0
        self.wrong_path_fetched = 0

    # -- status ----------------------------------------------------------------------

    @property
    def fetch_exhausted(self) -> bool:
        """No more correct-path instructions left to fetch."""
        return self.fetch_index >= len(self.trace) and not self.wrong_path

    @property
    def finished(self) -> bool:
        """The thread has committed its whole trace."""
        return (self.fetch_exhausted and self.rob.empty
                and not self.decode_queue)

    @property
    def decode_room(self) -> int:
        return DECODE_BUFFER_ENTRIES - len(self.decode_queue)

    def front_end_count(self) -> int:
        """Instructions between fetch and rename (ICOUNT's front-end term)."""
        return len(self.decode_queue)

    # -- fetch helpers ------------------------------------------------------------------

    def next_instruction(self) -> Optional[DynInstr]:
        """The instruction fetch would deliver next (not yet consumed)."""
        if self.wrong_path:
            instr = self.synth.synthesize(self.wrong_pc)
            self.wrong_pc = self.clamp_pc(self.wrong_pc + 4)
            self.wrong_path_fetched += 1
            return instr
        if self.fetch_index >= len(self.trace):
            return None
        return self.trace[self.fetch_index]

    def consume_correct_path(self) -> None:
        """Advance past the trace instruction just fetched."""
        self.fetch_index += 1

    def clamp_pc(self, pc: int) -> int:
        """Fold a speculative PC back into the thread's code footprint."""
        return self._code_base + ((pc - self._code_base) % self._code_bytes)

    def stamp(self, instr: DynInstr) -> None:
        instr.fetch_stamp = self.next_fetch_stamp
        self.next_fetch_stamp += 1
        self.fetched += 1

    def drop_decoded_younger_than(self, boundary_stamp: int):
        """Squash front-end instructions fetched after ``boundary_stamp``.

        Returns the dropped instructions so squash observers (fetch-policy
        hooks) can release any per-instruction state.
        """
        kept = [(c, i) for c, i in self.decode_queue if i.fetch_stamp <= boundary_stamp]
        dropped = [i for _, i in self.decode_queue if i.fetch_stamp > boundary_stamp]
        for instr in dropped:
            instr.squashed = True
        self.decode_queue = deque(kept)
        return dropped
