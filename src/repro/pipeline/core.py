"""The SMT pipeline cycle loop.

Stage order within a cycle (oldest work first, as in M-Sim):
commit -> writeback -> issue -> rename/dispatch -> fetch.  A value written
back in cycle *c* can feed an issue in the same cycle (full forwarding);
a committed instruction vacates its ROB/LSQ entries for the same cycle's
dispatch.

Squash machinery is shared between branch-misprediction recovery and the
FLUSH fetch policy: both rewind a thread to a boundary instruction, undo
renames in reverse order, and reset the thread's trace fetch pointer —
materialised traces make replay exact.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import MachineConfig, SimConfig
from repro.errors import SimulationError, StructureError
from repro.fetch.base import FetchPolicy
from repro.instrument import Instrumentation, Structure
from repro.isa.instruction import DynInstr
from repro.isa.opcodes import OpClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.frontend import ThreadContext
from repro.structures.functional_units import FunctionalUnitPool
from repro.structures.issue_queue import SharedIssueQueue
from repro.structures.regfile import PhysicalRegisterFile
from repro.workload.generator import ThreadTrace

#: Completion event: (instr, fetch_stamp at schedule time, dl1 miss, l2 miss).
_Event = Tuple[DynInstr, int, bool, bool]


class SMTCore:
    """One simulated SMT processor executing a set of thread traces.

    The core is observer-agnostic: all residency accounting flows through
    ``instruments.probe`` (a :class:`~repro.instrument.ResidencyProbe`),
    and per-cycle/lifecycle observers (auditor, phase tracker, trace
    writer) arrive as pre-resolved hook tuples on the same
    :class:`~repro.instrument.Instrumentation` container.  Wiring lives in
    :class:`repro.sim.session.SimSession` — the core never imports
    ``repro.avf`` or ``repro.audit``.
    """

    def __init__(self, traces: List[ThreadTrace], config: MachineConfig,
                 policy: FetchPolicy, sim: SimConfig,
                 instruments: Instrumentation) -> None:
        self.config = config
        self.policy = policy
        self.sim = sim
        self.num_threads = len(traces)
        self.instruments = instruments
        probe = instruments.probe
        self.mem = MemoryHierarchy(config,
                                   dl1_observer=instruments.dl1_observer,
                                   dtlb_observer=instruments.dtlb_observer)
        self.threads = [
            ThreadContext(tid, trace, config, probe, sim.seed)
            for tid, trace in enumerate(traces)
        ]
        self._iq = SharedIssueQueue(config.iq_entries, probe)
        # Physical file = per-thread architectural backing + shared rename
        # pool (M-Sim sizing); see MachineConfig.int_phys_regs.
        from repro.workload.generator import NUM_FP_REGS, NUM_INT_REGS
        self._regfile = PhysicalRegisterFile(
            config.int_phys_regs + NUM_INT_REGS * self.num_threads,
            config.fp_phys_regs + NUM_FP_REGS * self.num_threads,
            self.num_threads, probe)
        self._fu_pool = FunctionalUnitPool(config, probe)
        self._events: Dict[int, List[_Event]] = {}
        # Issue wakeup: phys reg -> [(instr, stamp), ...] waiting on it.
        self._waiters: Dict[int, List[Tuple[DynInstr, int]]] = {}

        self.cycle = 0
        self.total_committed = 0
        self._commit_rr = 0
        self._dispatch_rr = 0
        # Round-robin orders are pure functions of (counter % n): precompute
        # all n rotations instead of building a fresh list twice per cycle.
        self._rotations: List[List[int]] = [
            [(start + i) % self.num_threads for i in range(self.num_threads)]
            for start in range(self.num_threads)
        ]
        self._cycle_hooks = instruments.cycle_hooks
        self._commit_hooks = instruments.commit_hooks
        # Value-taint propagation (live fault injection).  Off by default:
        # a normal run pays one falsy check per issue/writeback/commit.
        self._taint = instruments.taint
        # Taint of committed memory words (8-byte aligned); empty while the
        # run is clean, so golden runs allocate nothing here.
        self.mem_tags: Dict[int, int] = {}
        if self._taint:
            # Traces are shared across a campaign's runs and fetch-time
            # resets only cover instructions this run actually fetches: a
            # stale tag from a previous strike would read as this run's
            # corruption.  Start taint-clean.
            for trace in traces:
                for instr in trace.instrs:
                    instr.value_tag = 0

        # Statistics.
        self.mispredict_squashes = 0
        self.dispatched_total = 0
        self.writebacks_total = 0
        self.measure_start_cycle = 0
        self._warmup_done = sim.warmup_instructions == 0
        self._committed_at_measure_start = [0] * self.num_threads

    @property
    def engine(self):
        """The residency ledger exposed for reporting and audits."""
        return self.instruments.ledger

    # -- public queries used by fetch policies -----------------------------------------

    def thread(self, tid: int) -> ThreadContext:
        return self.threads[tid]

    def in_flight_count(self, tid: int) -> int:
        """Front-end plus issue-queue instructions (ICOUNT's metric)."""
        return self.threads[tid].front_end_count() + self._iq.thread_count(tid)

    def fetchable_threads(self) -> List[int]:
        """Threads that could accept fetch bandwidth this cycle."""
        return [
            t.id for t in self.threads
            if not t.finished
            and not t.fetch_exhausted
            and t.fetch_blocked_until <= self.cycle
            and t.decode_room > 0
        ]

    @property
    def issue_queue(self) -> SharedIssueQueue:
        return self._iq

    @property
    def regfile(self) -> PhysicalRegisterFile:
        return self._regfile

    @property
    def fu_pool(self) -> FunctionalUnitPool:
        return self._fu_pool

    # -- main loop ------------------------------------------------------------------------

    def run(self) -> int:
        """Simulate until the instruction budget or all traces complete.

        Returns the number of measured cycles (post-warmup).
        """
        while not self._done():
            self.cycle += 1
            if self.cycle > self.sim.max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={self.sim.max_cycles} "
                    f"(committed {self.total_committed})"
                )
            self.mem.begin_cycle(self.cycle)
            self._commit()
            self._writeback()
            self._issue()
            self._fu_pool.tick(self.cycle)
            self._rename_dispatch()
            self._fetch()
            if self._cycle_hooks:
                for hook in self._cycle_hooks:
                    hook.on_cycle(self)
        self._drain()
        for hook in self.instruments.finalize_hooks:
            hook.on_finalize(self)
        return self.measured_cycles

    @property
    def measured_cycles(self) -> int:
        measured = self.cycle - self.measure_start_cycle
        if measured <= 0:
            # A run that ends inside (or exactly at the end of) its timing
            # warmup has no measurement window; clamping to one fake cycle
            # here used to mis-report IPC and AVF silently.
            raise SimulationError(
                f"empty measurement window: the run ended at cycle "
                f"{self.cycle} but measurement started at cycle "
                f"{self.measure_start_cycle} (warmup_instructions="
                f"{self.sim.warmup_instructions} of max_instructions="
                f"{self.sim.max_instructions}); lower the warmup or raise "
                f"the budget")
        return measured

    def committed_in_window(self, tid: int) -> int:
        return self.threads[tid].committed - self._committed_at_measure_start[tid]

    def _done(self) -> bool:
        if self.total_committed >= self.sim.max_instructions:
            return True
        return all(t.finished for t in self.threads)

    # -- commit ------------------------------------------------------------------------------

    def _commit(self) -> None:
        budget = self.config.commit_width
        order = self._rotated(self._commit_rr)
        self._commit_rr += 1
        for tid in order:
            t = self.threads[tid]
            while budget > 0:
                head = t.rob.head()
                if head is None or head.completed_at < 0 or head.completed_at >= self.cycle:
                    break
                if head.is_store and not head.wrong_path:
                    if not self.mem.claim_dl1_port():
                        break
                    self.mem.data_access(head.mem_addr, self.cycle, tid, is_write=True)
                t.rob.pop_head(self.cycle)
                if head.is_memory:
                    t.lsq.remove_committed(head, self.cycle)
                self._regfile.on_commit(head, self.cycle)
                head.committed_at = self.cycle
                if self._taint and head.is_store and not head.wrong_path:
                    addr = head.mem_addr & ~0x7
                    if head.value_tag:
                        self.mem_tags[addr] = head.value_tag
                    else:
                        # A clean store overwrites tainted memory: masked.
                        self.mem_tags.pop(addr, None)
                if self._commit_hooks:
                    for hook in self._commit_hooks:
                        hook.on_commit(self, head)
                t.committed += 1
                self.total_committed += 1
                budget -= 1
                self._maybe_end_warmup()

    def _maybe_end_warmup(self) -> None:
        if self._warmup_done or self.total_committed < self.sim.warmup_instructions:
            return
        self._warmup_done = True
        self.measure_start_cycle = self.cycle
        for hook in self.instruments.reset_hooks:
            hook.on_reset(self.cycle)
        self._committed_at_measure_start = [t.committed for t in self.threads]

    # -- writeback -----------------------------------------------------------------------------

    def _writeback(self) -> None:
        for instr, stamp, dl1_miss, l2_miss in self._events.pop(self.cycle, ()):
            self.writebacks_total += 1
            t = self.threads[instr.thread_id]
            # Miss counters were claimed by this issue instance: always release.
            if dl1_miss:
                t.outstanding_l1d -= 1
            if l2_miss:
                t.outstanding_l2 -= 1
            if instr.squashed or instr.fetch_stamp != stamp:
                continue  # stale event from a squashed-and-refetched instance
            if instr.is_load or instr.op is OpClass.PREFETCH:
                self.policy.on_load_resolved(self, instr)
            instr.completed_at = self.cycle
            if instr.phys_dest is not None:
                self._regfile.mark_written(
                    instr.phys_dest, self.cycle,
                    instr.value_tag if self._taint else 0)
                self._wake_waiters(instr.phys_dest)
            if instr.is_control:
                self._resolve_control(t, instr)

    def _wake_waiters(self, phys: int) -> None:
        """Producer wrote back: decrement its consumers' pending counts."""
        waiters = self._waiters.pop(phys, None)
        if not waiters:
            return
        for consumer, stamp in waiters:
            # Stale records (squashed or squashed-and-refetched consumers)
            # are ignored; a refetched instance re-registers at rename.
            if consumer.fetch_stamp == stamp and not consumer.squashed:
                consumer.pending_srcs -= 1

    def _resolve_control(self, t: ThreadContext, instr: DynInstr) -> None:
        mispredicted = t.branch_unit.resolve(instr, instr.prediction)
        if not mispredicted:
            return
        self.mispredict_squashes += 1
        self.squash_after(instr)
        t.wrong_path = False
        t.pending_branch = None
        # The redirect abandons any in-flight wrong-path I-cache miss.
        t.fetch_blocked_until = self.cycle + 1

    # -- squash (shared by mispredict recovery and FLUSH) ---------------------------------------

    def squash_after(self, boundary: DynInstr) -> None:
        """Squash everything ``boundary``'s thread fetched after it."""
        if boundary.wrong_path:
            raise SimulationError("squash boundary must be a correct-path instruction")
        t = self.threads[boundary.thread_id]
        stamp = boundary.fetch_stamp
        for dropped in t.drop_decoded_younger_than(stamp):
            self.policy.on_squash(self, dropped)
        self._iq.squash_thread(t.id, stamp, self.cycle)
        t.lsq.squash_younger_than(stamp, self.cycle)
        for squashed in t.rob.squash_younger_than(stamp, self.cycle):
            self._regfile.on_squash(squashed, self.cycle)
            self.policy.on_squash(self, squashed)
        t.fetch_index = boundary.seq + 1
        if t.pending_branch is not None and t.pending_branch.fetch_stamp > stamp:
            t.pending_branch = None
            t.wrong_path = False

    # -- issue ------------------------------------------------------------------------------------

    def _issue(self) -> None:
        budget = self.config.issue_width
        for instr in self._iq.entries():
            if budget == 0:
                break
            if instr.squashed or instr.pending_srcs > 0:
                continue
            if not self._fu_pool.can_issue(instr.op):
                continue
            if instr.is_load or instr.op is OpClass.PREFETCH:
                if not self._issue_load(instr):
                    continue
            elif instr.is_store:
                self._schedule(instr, self.config.agen_latency + 1, False, False)
            else:
                latency = self._fu_pool.latency_of(instr.op)
                self._schedule(instr, latency, False, False)
            self._fu_pool.issue(instr, self.cycle)
            for phys in instr.phys_srcs:
                self._regfile.note_read(phys, self.cycle, instr.is_ace)
            if self._taint:
                for phys in instr.phys_srcs:
                    if phys is not None:
                        instr.value_tag |= self._regfile.tag_of(phys)
            instr.issued_at = self.cycle
            self._iq.remove_issued(instr, self.cycle)
            budget -= 1

    def _issue_load(self, instr: DynInstr) -> bool:
        """Schedule a load/prefetch; False when it cannot issue this cycle."""
        t = self.threads[instr.thread_id]
        store = t.lsq.forwarding_store(instr)
        if store is not None:
            if store.completed_at < 0:
                return False  # wait for the store's data
            t.lsq.forwards += 1
            if self._taint:
                instr.value_tag |= store.value_tag
            self._schedule(instr, self.config.agen_latency + 1, False, False)
            return True
        if not self.mem.claim_dl1_port():
            return False
        if self._taint and self.mem_tags:
            instr.value_tag |= self.mem_tags.get(instr.mem_addr & ~0x7, 0)
        result = self.mem.data_access(instr.mem_addr, self.cycle + 1,
                                      instr.thread_id, is_write=False)
        instr.dl1_missed = result.dl1_miss
        instr.l2_missed = result.l2_miss
        if result.dl1_miss:
            t.outstanding_l1d += 1
        if result.l2_miss:
            t.outstanding_l2 += 1
            if not instr.wrong_path:
                self.policy.on_l2_miss(self, instr)
        self._schedule(instr, self.config.agen_latency + result.latency,
                       result.dl1_miss, result.l2_miss)
        return True

    def _schedule(self, instr: DynInstr, latency: int,
                  dl1_miss: bool, l2_miss: bool) -> None:
        when = self.cycle + max(latency, 1)
        bucket = self._events.get(when)
        if bucket is None:
            bucket = self._events[when] = []
        bucket.append((instr, instr.fetch_stamp, dl1_miss, l2_miss))

    # -- rename / dispatch ----------------------------------------------------------------------------

    def _rename_dispatch(self) -> None:
        budget = self.config.issue_width
        iq_partition = (self.config.iq_entries // self.num_threads
                        if self.config.iq_partitioned else None)
        order = self._rotated(self._dispatch_rr)
        self._dispatch_rr += 1
        for tid in order:
            t = self.threads[tid]
            while budget > 0 and t.decode_queue:
                ready_cycle, instr = t.decode_queue[0]
                if ready_cycle > self.cycle:
                    break
                if t.rob.full:
                    break
                if instr.is_memory and t.lsq.full:
                    break
                needs_iq = instr.op is not OpClass.NOP
                if needs_iq and self._iq.full:
                    break
                if (needs_iq and iq_partition is not None
                        and self._iq.thread_count(tid) >= iq_partition):
                    break
                if not self._regfile.rename(instr, self.cycle):
                    break
                t.decode_queue.popleft()
                instr.renamed_at = self.cycle
                instr.pending_srcs = 0
                for phys in instr.phys_srcs:
                    if phys is not None and not self._regfile.is_ready(phys):
                        instr.pending_srcs += 1
                        self._waiters.setdefault(phys, []).append(
                            (instr, instr.fetch_stamp))
                t.rob.push(instr, self.cycle)
                if instr.is_memory:
                    t.lsq.add(instr, self.cycle)
                if needs_iq:
                    self._iq.add(instr, self.cycle)
                else:
                    instr.completed_at = self.cycle  # NOPs complete at dispatch
                self.dispatched_total += 1
                budget -= 1

    # -- fetch -------------------------------------------------------------------------------------------

    def _fetch(self) -> None:
        order = self.policy.priorities(self)
        remaining = self.config.fetch_width
        threads_used = 0
        for tid in order:
            if threads_used >= self.config.fetch_threads_per_cycle or remaining <= 0:
                break
            fetched = self._fetch_thread(self.threads[tid], remaining)
            if fetched:
                remaining -= fetched
                threads_used += 1

    def _fetch_thread(self, t: ThreadContext, budget: int) -> int:
        count = 0
        current_line = None
        while count < budget and t.decode_room > 0:
            if t.fetch_blocked_until > self.cycle:
                break
            wrong_path = t.wrong_path
            if not wrong_path and t.fetch_index >= len(t.trace):
                break
            pc = t.wrong_pc if wrong_path else t.trace[t.fetch_index].pc
            line = self.mem.il1.line_address(pc)
            if line != current_line:
                if line == t.line_buffer:
                    # The fill this thread waited on is in its line buffer;
                    # consume it without re-probing the IL1.
                    current_line = line
                else:
                    result = self.mem.fetch_access(pc, self.cycle, t.id)
                    if result.blocks_fetch:
                        t.fetch_blocked_until = self.cycle + result.latency
                        t.line_buffer = line
                        break
                    current_line = line
                    t.line_buffer = -1
            instr = t.next_instruction()
            if instr is None:
                break
            if not wrong_path:
                self._reset_pipeline_state(instr)
                t.consume_correct_path()
            t.stamp(instr)
            instr.fetched_at = self.cycle
            t.decode_queue.append((self.cycle + self.config.decode_latency, instr))
            count += 1
            self.policy.on_fetch(self, instr)
            if instr.is_control:
                if self._predict_control(t, instr):
                    break  # fetch block ends at a taken or mispredicted branch
        return count

    def _predict_control(self, t: ThreadContext, instr: DynInstr) -> bool:
        """Predict a control instruction at fetch; True ends the fetch block."""
        prediction = t.branch_unit.predict(instr)
        instr.prediction = prediction
        if prediction.mispredicts(instr):
            instr.mispredicted = True
            t.wrong_path = True
            t.pending_branch = instr
            if prediction.taken and prediction.target is not None:
                t.wrong_pc = t.clamp_pc(prediction.target)
            else:
                t.wrong_pc = t.clamp_pc(instr.pc + 4)
            return True
        return prediction.taken

    @staticmethod
    def _reset_pipeline_state(instr: DynInstr) -> None:
        """Clear pipeline annotations before (re-)fetching a trace instruction.

        Required for squash-and-replay: the same trace object flows through
        the pipeline again and must not carry state from its squashed run.
        """
        instr.fetched_at = -1
        instr.renamed_at = -1
        instr.issued_at = -1
        instr.completed_at = -1
        instr.committed_at = -1
        instr.phys_dest = None
        instr.old_phys_dest = None
        instr.phys_srcs = ()
        instr.squashed = False
        instr.mispredicted = False
        instr.dl1_missed = False
        instr.l2_missed = False
        instr.prediction = None
        instr.pending_srcs = 0
        instr.value_tag = 0

    # -- live fault injection --------------------------------------------------------------------------------

    def inject_bit(self, structure: Structure, slot: int, bit: int,
                   length: int = 1):
        """Flip ``length`` adjacent bits starting at ``bit`` of entry
        ``slot`` of ``structure``, live (clipped at field boundaries —
        see :func:`repro.structures.strike.burst_bits`).

        ``slot`` indexes the structure's *machine-wide* capacity — private
        structures (ROB, LSQ, per-thread arch backing in the register pool)
        concatenate their per-thread banks in thread order, matching the
        capacities the ACE ledger normalises by (repro.avf.bits).  Returns
        the :class:`~repro.structures.strike.StrikeReceipt` for undo.
        """
        if structure is Structure.IQ:
            return self._iq.inject_bit(slot, bit, length)
        if structure is Structure.ROB:
            tid, index = divmod(slot, self.config.rob_entries)
            return self.threads[tid].rob.inject_bit(index, bit, self.cycle,
                                                    length)
        if structure in (Structure.LSQ_TAG, Structure.LSQ_DATA):
            tid, index = divmod(slot, self.config.lsq_entries)
            return self.threads[tid].lsq.inject_bit(index, bit, structure,
                                                    length)
        if structure is Structure.REG:
            return self._regfile.inject_bit(slot, bit, length)
        if structure is Structure.FU:
            return self._fu_pool.inject_bit(slot, bit, length)
        raise StructureError(f"structure {structure.value} is not injectable")

    # -- helpers -----------------------------------------------------------------------------------------------

    def _rotated(self, counter: int) -> List[int]:
        return self._rotations[counter % self.num_threads]

    def _drain(self) -> None:
        """Close all open residency intervals at the final cycle."""
        self._iq.drain(self.cycle)
        for t in self.threads:
            t.rob.drain(self.cycle)
            t.lsq.drain(self.cycle)
        self._regfile.drain(self.cycle)
        self.mem.drain(self.cycle)
