"""Cycle-level SMT pipeline: the execution model the AVF engine instruments.

8-wide fetch/issue/commit, 7-stage, with a shared issue queue, merged
physical register file and functional-unit pool, and per-thread ROBs, LSQs
and branch predictors — the Table 1 machine.
"""

from repro.pipeline.frontend import ThreadContext
from repro.pipeline.core import SMTCore

__all__ = ["ThreadContext", "SMTCore"]
