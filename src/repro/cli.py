"""Command-line interface: run simulations and regenerate paper artefacts.

Installed as the ``repro-sim`` console script::

    repro-sim list                              # workloads, policies, programs
    repro-sim run 4-MIX-A --policy FLUSH -n 2500
    repro-sim run mcf twolf --policy ICOUNT     # ad-hoc program list
    repro-sim figure 1 --scale 1200             # any of 1..8
    repro-sim inject 2-MIX-A --strikes 10000    # AVF-vs-injection check
    repro-sim fit 4-CPU-A                       # FIT/MTTF breakdown
    repro-sim reproduce --jobs 8 --cache-dir .repro-cache   # parallel + cached
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.avf.fit import DEFAULT_RAW_FIT_PER_BIT, fit_estimate
from repro.config import SimConfig
from repro.errors import MissingResultError, ReproError
from repro.fetch.registry import EXTENSION_POLICY_NAMES, POLICY_NAMES
from repro.sim.backends import BACKEND_NAMES, apply_backend_env
from repro.sim.simulator import simulate
from repro.workload.mixes import TABLE2_MIXES, get_mix
from repro.workload.spec2000 import PROFILES


def _positive_int(raw: str) -> int:
    """argparse type: an integer >= 1, rejected with a clear message.

    Negative instruction/worker counts used to sail through argparse and
    blow up deep inside numpy or the executor; fail at the parser instead.
    """
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{raw!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def _non_negative_int(raw: str) -> int:
    """argparse type: an integer >= 0 (zero-strike campaigns are legal)."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{raw!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {value}")
    return value


def _protect_arg(raw: str):
    """argparse type: a protection assignment, validated at parse time.

    Accepts one scheme name applied everywhere (``parity``) or a
    per-structure list (``iq=secded,rob=parity``); unknown schemes and
    structures are rejected here, naming the valid sets, instead of
    surfacing as a late ``ValueError`` from the enum constructor deep in
    the campaign.
    """
    from repro.errors import ConfigError
    from repro.protection import ProtectionConfig

    try:
        return ProtectionConfig.parse(raw)
    except ConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _mbu_len(raw: str) -> int:
    """argparse type: an MBU cluster-length cap within the burst model."""
    from repro.structures.strike import MAX_CLUSTER_LEN

    value = _positive_int(raw)
    if value > MAX_CLUSTER_LEN:
        raise argparse.ArgumentTypeError(
            f"cluster length cap must be 1..{MAX_CLUSTER_LEN}, got {value}")
    return value


def _positive_float(raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{raw!r} is not a number") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number of seconds, got {value}")
    return value


def _resolve_workload(tokens: List[str]):
    """One token naming a Table 2 mix, or several naming SPEC programs."""
    if len(tokens) == 1 and tokens[0] in TABLE2_MIXES:
        return get_mix(tokens[0])
    unknown = [t for t in tokens if t not in PROFILES]
    if unknown:
        raise ReproError(
            f"unknown workload/programs {unknown}; use 'repro-sim list'")
    return tokens


def _cmd_list(args: argparse.Namespace) -> int:
    print("Table 2 workloads:")
    for name in sorted(TABLE2_MIXES):
        mix = TABLE2_MIXES[name]
        print(f"  {name:<10} {', '.join(mix.programs)}")
    print("\nFetch policies (paper):", ", ".join(POLICY_NAMES))
    print("Fetch policies (Section 5 extensions):",
          ", ".join(EXTENSION_POLICY_NAMES))
    print("\nSPEC CPU 2000 program models:", ", ".join(sorted(PROFILES)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    apply_backend_env(args.backend)
    workload = _resolve_workload(args.workload)
    threads = (workload.num_threads if hasattr(workload, "num_threads")
               else len(workload))
    sim = SimConfig(max_instructions=args.instructions * threads,
                    seed=args.seed,
                    phase_window_cycles=args.phase_window,
                    check_invariants=args.check_invariants)
    result = simulate(workload, policy=args.policy, sim=sim,
                      trace_out=args.trace_out, backend=args.backend)
    print(result.summary())
    if result.audit is not None:
        checks = result.audit["invariant_checks"]
        every = result.audit["check_interval"]
        line = (f"audit: {checks} invariant checks "
                f"(every {every} cycles), no violations" if every
                else "audit: tracing only (no invariant checks)")
        if "trace_path" in result.audit:
            line += (f"; trace: {result.audit['trace_path']} "
                     f"({result.audit['trace_events']} events)")
        print(line)
    if result.phase_series is not None:
        from repro.avf.phases import phase_statistics
        from repro.avf.structures import Structure

        print(f"\nAVF phases ({result.phase_series.windows()} windows of "
              f"{args.phase_window} cycles):")
        for s in (Structure.IQ, Structure.ROB, Structure.REG):
            stats = phase_statistics(result.phase_series, s)
            print(f"  {s.value:<6} mean={stats.mean:.4f} "
                  f"cov={stats.coefficient_of_variation:.2f} "
                  f"last-value MAE={stats.last_value_mae:.4f}")
    return 0


def _cache_from_args(args: argparse.Namespace):
    """Build the ResultCache the --jobs/--cache-dir/--no-cache flags ask for."""
    from repro.experiments.runner import ResultCache

    cache_dir = None if args.no_cache else args.cache_dir
    return ResultCache(cache_dir=cache_dir)


def _supervisor_from_args(args: argparse.Namespace, tag: str):
    """Build the Supervisor (and checkpoint journal) the flags ask for.

    Returns ``None`` when nothing asks for supervision: no resilience
    flag was given and no chaos spec is in the environment.  (A bare
    ``--jobs N`` still fans out, via :func:`run_jobs`'s own zero-retry
    supervisor, with behaviour identical to the pre-resilience pool.)
    """
    import os
    from pathlib import Path

    from repro.resilience import (CHAOS_ENV_VAR, CheckpointJournal,
                                  RetryPolicy, Supervisor)

    flagged = (args.job_timeout is not None or args.retries is not None
               or args.max_failures is not None or args.resume
               or args.failures_out is not None)
    if not flagged and not os.environ.get(CHAOS_ENV_VAR):
        return None
    if args.resume and (args.no_cache or not args.cache_dir):
        raise ReproError("--resume requires --cache-dir: the journal marks "
                         "jobs done, but their results live in the cache")
    journal = None
    if args.cache_dir and not args.no_cache:
        cache_dir = Path(args.cache_dir)
        cache_dir.mkdir(parents=True, exist_ok=True)
        journal = CheckpointJournal(cache_dir / f"journal-{tag}.jsonl",
                                    resume=args.resume)
    policy = RetryPolicy(
        retries=2 if args.retries is None else args.retries,
        job_timeout=args.job_timeout,
        max_failures=0 if args.max_failures is None else args.max_failures,
    )
    return Supervisor(max_workers=args.jobs, policy=policy, journal=journal)


def _finish_resilient(supervisor, failures_out) -> int:
    """Write failures.json if asked and pick the exit code (0 ok, 3 degraded)."""
    from pathlib import Path

    if supervisor is None:
        return 0
    if failures_out is not None:
        supervisor.report.write(Path(failures_out))
    if supervisor.report:
        print(f"degraded: {len(supervisor.report.failures)} job(s) failed "
              f"permanently after retries", file=sys.stderr)
        return 3
    return 0


def _apply_audit_env(args: argparse.Namespace) -> None:
    """Propagate --check-invariants to experiment runs (and their workers).

    The experiments layer builds its SimConfigs from
    :class:`ExperimentScale`, which reads ``REPRO_CHECK_INVARIANTS`` — the
    same shape as ``REPRO_SCALE`` — so the flag reaches every simulation,
    including those fanned out to ``--jobs`` worker processes.
    """
    import os

    from repro.experiments.runner import AUDIT_ENV_VAR

    if getattr(args, "check_invariants", None):
        os.environ[AUDIT_ENV_VAR] = str(args.check_invariants)


def _cmd_figure(args: argparse.Namespace) -> int:
    import os

    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    _apply_audit_env(args)
    apply_backend_env(args.backend)
    from repro import experiments
    from repro.experiments.parallel import prewarm_artefacts
    from repro.experiments.reproduce import ARTEFACTS
    from repro.experiments.runner import ExperimentScale

    runners = {
        1: (experiments.run_figure1, experiments.format_figure1),
        2: (experiments.run_figure2, experiments.format_figure2),
        3: (experiments.run_figure3, experiments.format_figure3),
        4: (experiments.run_figure4, experiments.format_figure4),
        5: (experiments.run_figure5, experiments.format_figure5),
        6: (experiments.run_figure6, experiments.format_figure6),
        7: (experiments.run_figure7, experiments.format_figure7),
        8: (experiments.run_figure8, experiments.format_figure8),
    }
    scale = ExperimentScale.from_env()
    cache = _cache_from_args(args)
    supervisor = _supervisor_from_args(args, f"fig{args.number}")
    artefact = next(n for n in ARTEFACTS if n.startswith(f"fig{args.number}_"))
    run, fmt = runners[args.number]
    try:
        prewarm_artefacts([artefact], scale, cache, jobs=args.jobs,
                          supervisor=supervisor)
        print(fmt(run(scale, cache)))
    except MissingResultError as exc:
        # A job exhausted its retries but stayed within --max-failures:
        # emit the marker instead of a traceback and report degradation.
        print(f"figure {args.number}: DEGRADED — MISSING({exc.label})")
        print(f"(job {exc.digest[:12]} failed permanently; "
              f"rerun with --retries/--resume)")
    return _finish_resilient(supervisor, args.failures_out)


def _cmd_inject(args: argparse.Namespace) -> int:
    from repro.faultinject import run_campaign, run_campaign_supervised

    apply_backend_env(args.backend)
    if args.live:
        return _cmd_inject_live(args)
    workload = _resolve_workload(args.workload)
    threads = (workload.num_threads if hasattr(workload, "num_threads")
               else len(workload))
    instructions = 2500 if args.instructions is None else args.instructions
    strikes = 5000 if args.strikes is None else args.strikes
    sim = SimConfig(max_instructions=instructions * threads,
                    seed=args.seed)
    cache_dir = None if args.no_cache else args.cache_dir
    tag = (args.workload[0] if len(args.workload) == 1
           else "+".join(args.workload))
    supervisor = _supervisor_from_args(args, f"inject-{tag}")
    if supervisor is None:
        result = run_campaign(workload, injections=strikes, sim=sim,
                              jobs=args.jobs, cache_dir=cache_dir)
        print(result.summary())
        return 0
    result = run_campaign_supervised(workload, supervisor,
                                     injections=strikes, sim=sim,
                                     classify_jobs=args.jobs,
                                     cache_dir=cache_dir)
    if result is None:
        print(f"inject: DEGRADED — MISSING(campaign/{tag}) "
              f"(campaign failed permanently; see failures report)")
    else:
        print(result.summary())
    return _finish_resilient(supervisor, args.failures_out)


def _cmd_inject_live(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.faultinject import LiveConfig, run_live_campaign
    from repro.faultinject.live import INJECTABLE
    from repro.structures.strike import MbuConfig

    workload = _resolve_workload(args.workload)
    threads = (workload.num_threads if hasattr(workload, "num_threads")
               else len(workload))
    instructions = 300 if args.instructions is None else args.instructions
    strikes = 24 if args.strikes is None else args.strikes
    sim = SimConfig(max_instructions=instructions * threads,
                    seed=args.seed)
    if args.structures:
        by_name = {s.value.lower(): s for s in INJECTABLE}
        try:
            structures = tuple(by_name[name.lower()]
                               for name in args.structures)
        except KeyError as exc:
            raise ReproError(f"unknown structure {exc.args[0]!r}; "
                             f"known: {', '.join(sorted(by_name))}")
    else:
        structures = INJECTABLE
    live = LiveConfig()
    if args.strike_batch is not None:
        live = replace(live, strike_batch=args.strike_batch)
    tag = (args.workload[0] if len(args.workload) == 1
           else "+".join(args.workload))
    supervisor = _supervisor_from_args(args, f"inject-live-{tag}")
    result = run_live_campaign(
        workload, injections=strikes, structures=structures,
        sim=sim, seed=args.seed,
        protection=args.protect, live=live,
        mbu=MbuConfig(max_len=args.mbu_len),
        forced=tuple(args.force), jobs=args.jobs, supervisor=supervisor,
        cache_dir=None if args.no_cache else args.cache_dir)
    print(result.summary())
    return _finish_resilient(supervisor, args.failures_out)


def _cmd_rmt(args: argparse.Namespace) -> int:
    from repro.rmt import coverage_analysis, run_redundant

    result = run_redundant(args.program, instructions=args.instructions,
                           seed=args.seed)
    print(result.summary())
    if args.coverage:
        print()
        cov = coverage_analysis(args.program, injections=args.strikes,
                                instructions=min(args.instructions, 2000),
                                seed=args.seed)
        print(cov.summary())
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    _apply_audit_env(args)
    apply_backend_env(args.backend)
    from repro.experiments.reproduce import ARTEFACTS, run_all

    only = args.only.split(",") if args.only else None
    if only:
        unknown = [n for n in only if n not in ARTEFACTS]
        if unknown:
            raise ReproError(f"unknown artefacts {unknown}; "
                             f"known: {sorted(ARTEFACTS)}")

    def progress(name: str, elapsed: float) -> None:
        print(f"  {name:<28} {elapsed:6.1f}s")

    cache = _cache_from_args(args)
    supervisor = _supervisor_from_args(args, "reproduce")
    print(f"Reproducing into {args.out} ...")
    report = run_all(Path(args.out), only=only, progress=progress,
                     jobs=args.jobs, cache=cache, supervisor=supervisor,
                     failures_out=(Path(args.failures_out)
                                   if args.failures_out else None))
    print(f"simulated {cache.simulated} runs "
          f"({cache.disk_hits} loaded from cache)")
    print(f"report: {report}")
    if supervisor is not None and supervisor.report:
        # run_all already wrote failures.json next to the report (or at
        # --failures-out); just surface the degradation in the exit code.
        print(f"degraded: {len(supervisor.report.failures)} job(s) failed "
              f"permanently after retries", file=sys.stderr)
        return 3
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    threads = (workload.num_threads if hasattr(workload, "num_threads")
               else len(workload))
    sim = SimConfig(max_instructions=args.instructions * threads, seed=args.seed)
    result = simulate(workload, policy=args.policy, sim=sim)
    estimate = fit_estimate(result.avf, raw_fit_per_bit=args.raw_fit)
    print(estimate.summary())
    print(f"\nvulnerability hotspot: {estimate.dominant_structure().value} "
          f"(protect this structure first — paper Section 5)")
    return 0


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    """Shared parallelism/cache flags (reproduce, figure, inject)."""
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for independent simulations "
                             "(default 1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="persist simulation results under this directory "
                             "and reuse them across invocations")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir: neither read nor write the "
                             "on-disk result cache")


def _add_resilience_options(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerant execution flags (reproduce, figure, inject)."""
    grp = parser.add_argument_group("resilience")
    grp.add_argument("--job-timeout", type=_positive_float, default=None,
                     metavar="SECONDS",
                     help="wall-clock limit per simulation job; a hung "
                          "worker is killed and the job retried")
    grp.add_argument("--retries", type=_non_negative_int, default=None,
                     metavar="N",
                     help="attempts after the first for a failed job, with "
                          "exponential backoff (default 2 when supervision "
                          "is engaged)")
    grp.add_argument("--max-failures", type=_non_negative_int, default=None,
                     metavar="N",
                     help="tolerate up to N permanently failed jobs and "
                          "emit degraded artefacts with MISSING markers "
                          "(default 0 = abort on first permanent failure)")
    grp.add_argument("--resume", action="store_true",
                     help="skip jobs recorded done in the checkpoint "
                          "journal under --cache-dir")
    grp.add_argument("--failures-out", default=None, metavar="PATH",
                     help="write the machine-readable failure report "
                          "(failures.json) to this path")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import run_service

    def ready(port: int) -> None:
        print(f"campaign service listening on http://{args.host}:{port} "
              f"(store: {args.store}, {args.workers} workers/campaign)",
              flush=True)

    run_service(args.store, host=args.host, port=args.port,
                workers=args.workers, max_running=args.max_running,
                max_queued=args.max_queued, ready=ready,
                lease_timeout=args.lease_timeout,
                hedge_after=args.hedge_after)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import signal

    from repro.resilience.chaos import NetworkChaos
    from repro.service.fleet import ChaosTransport, HttpTransport, ShardAgent

    base = args.connect
    transport = HttpTransport(base)
    chaos = NetworkChaos()
    if chaos:
        transport = ChaosTransport(transport, chaos)
    agent = ShardAgent(transport, shard_id=args.shard_id, jobs=args.jobs,
                       heartbeat_interval=args.heartbeat_interval,
                       poll_wait=args.poll_wait, chaos=chaos)

    def stop(signum, frame) -> None:
        agent.request_stop()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, stop)
        except (ValueError, OSError):
            pass  # not the main thread (tests drive run() directly)
    print(f"worker shard {agent.shard_id} connecting to {base}"
          + (" [network chaos armed]" if chaos else ""), flush=True)
    done = agent.run(max_batches=args.max_batches)
    print(f"worker shard {agent.shard_id} stopped after {done} "
          f"committed batch(es)", flush=True)
    return 0


def _read_spec_source(source: str) -> dict:
    import json

    if source == "-":
        raw = sys.stdin.read()
    else:
        try:
            with open(source, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as exc:
            raise ReproError(f"cannot read spec file {source}: {exc}")
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        raise ReproError(f"spec is not valid JSON: {exc}")
    return payload


def _service_request(base: str, method: str, path: str, body=None,
                     timeout: float = 150.0,
                     connect_timeout: float = None):
    """One request against the campaign service; returns (status, payload).

    A connection that cannot be established (refused, unresolvable,
    connect timeout) raises :class:`ReproError` — ``main`` renders that
    as a one-line ``error:`` diagnostic and exit code 2, never a
    traceback; an unreachable server is an operational condition, not a
    bug.  ``connect_timeout`` bounds only the connect; ``timeout``
    governs the request/response exchange (long polls need the larger
    bound).
    """
    import http.client
    import json
    import socket
    from urllib.parse import urlsplit

    url = urlsplit(base if "//" in base else f"http://{base}")
    if url.scheme not in ("", "http"):
        raise ReproError(f"unsupported server scheme: {url.scheme}")
    conn = http.client.HTTPConnection(url.hostname or "127.0.0.1",
                                      url.port or 8642,
                                      timeout=connect_timeout or timeout)
    try:
        try:
            conn.connect()
        except socket.timeout:
            raise ReproError(
                f"cannot reach campaign service at {base}: connect timed "
                f"out after {connect_timeout or timeout:g}s (is "
                f"`repro-sim serve` running?)")
        except OSError as exc:
            raise ReproError(f"cannot reach campaign service at {base}: "
                             f"{exc} (is `repro-sim serve` running?)")
        if conn.sock is not None:
            conn.sock.settimeout(timeout)
        data = json.dumps(body).encode("utf-8") if body is not None else None
        try:
            conn.request(method, path, body=data,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            raw = response.read()
        except OSError as exc:
            raise ReproError(f"campaign service at {base} dropped the "
                             f"request: {exc}")
        try:
            payload = json.loads(raw)
        except ValueError:
            payload = {"error": raw.decode("utf-8", "replace")}
        return response.status, payload, raw
    finally:
        conn.close()


def _print_progress(status: dict) -> None:
    batches = status.get("batches", {})
    line = (f"  state={status['state']} "
            f"batches={batches.get('done', 0)}/{batches.get('total', 0)}")
    print(line)
    for entry in status.get("progress", []):
        print(f"    {entry['structure']:<8} strikes={entry['strikes']:<5} "
              f"sdc_rate={entry['sdc_rate']:.3f} "
              f"CI=[{entry['wilson_low']:.3f}, {entry['wilson_high']:.3f}]")


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = _read_spec_source(args.spec)
    status_code, status, _ = _service_request(
        args.server, "POST", "/campaigns", body=spec,
        connect_timeout=args.connect_timeout)
    if status_code == 429:
        raise ReproError(
            f"submission rejected (429): {status.get('error', status)} "
            f"[queue {status.get('queue_depth')}/{status.get('max_queued')}, "
            f"retry after ~{status.get('retry_after')}s]")
    if status_code not in (200, 201):
        raise ReproError(f"submission rejected ({status_code}): "
                         f"{status.get('error', status)}")
    cid = status["id"]
    print(f"campaign {cid} "
          f"({'deduplicated' if status.get('deduplicated') else 'submitted'}, "
          f"state: {status['state']})")

    while status["state"] not in ("done", "degraded", "failed", "cancelled"):
        _print_progress(status)
        version = status["version"]
        status_code, status, _ = _service_request(
            args.server, "GET",
            f"/campaigns/{cid}?wait={args.wait}&version={version}",
            connect_timeout=args.connect_timeout)
        if status_code != 200:
            raise ReproError(f"status poll failed ({status_code}): "
                             f"{status.get('error', status)}")
    _print_progress(status)

    if status["state"] == "cancelled":
        print(f"error: campaign {cid} was cancelled (resubmit to resume "
              f"from its finished batches)", file=sys.stderr)
        return 2
    if status["state"] == "failed":
        print(f"error: campaign failed: {status.get('error')}",
              file=sys.stderr)
        for failure in status.get("failures", []):
            print(f"  failed job: {failure.get('label')} "
                  f"({', '.join(failure.get('kinds', []))})",
                  file=sys.stderr)
        return 2
    if status["state"] == "degraded":
        failures = status.get("failures", [])
        print(f"degraded: {len(failures)} job(s) failed permanently "
              f"after retries", file=sys.stderr)
        for failure in failures:
            print(f"  failed job: {failure.get('label')} "
                  f"({', '.join(failure.get('kinds', []))})",
                  file=sys.stderr)
        return 3

    status_code, _, raw = _service_request(
        args.server, "GET", f"/campaigns/{cid}/result",
        connect_timeout=args.connect_timeout)
    if status_code != 200:
        raise ReproError(f"result fetch failed ({status_code})")
    if args.out:
        with open(args.out, "wb") as handle:
            handle.write(raw)
        print(f"result ({len(raw)} bytes) -> {args.out}")
    else:
        sys.stdout.write(raw.decode("utf-8"))
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    status_code, status, _ = _service_request(
        args.server, "DELETE", f"/campaigns/{args.campaign}",
        connect_timeout=args.connect_timeout)
    if status_code == 404:
        raise ReproError(f"unknown campaign: {args.campaign}")
    if status_code == 409:
        raise ReproError(f"cannot cancel ({status_code}): "
                         f"{status.get('error', status)}")
    if status_code != 200:
        raise ReproError(f"cancellation failed ({status_code}): "
                         f"{status.get('error', status)}")
    state = status.get("state", "unknown")
    batches = status.get("batches", {})
    print(f"campaign {args.campaign} -> {state} "
          f"(batches {batches.get('done', 0)}/{batches.get('total', 0)} "
          f"committed; resubmit to resume from them)")
    # A drain can legitimately land on done/degraded when the work beat
    # the cancellation; either way the service answered authoritatively.
    return 0


def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    """The cycle-kernel selector: ``--backend {python,vector}``.

    Exported as ``REPRO_BACKEND`` so ``--jobs`` worker processes run the
    same kernel; both kernels produce byte-identical results.
    """
    parser.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                        help="cycle-kernel implementation (default python; "
                             "vector is the numpy-accelerated kernel with "
                             "identical results)")


def _add_invariant_option(parser: argparse.ArgumentParser) -> None:
    """The runtime-audit knob: ``--check-invariants`` (optionally =N)."""
    parser.add_argument("--check-invariants", type=int, nargs="?",
                        const=1, default=0, metavar="N",
                        help="audit pipeline/ledger conservation laws every "
                             "N cycles (bare flag: every cycle; default off)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Reliability-aware SMT simulator (ISPASS 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, policies and programs")

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("workload", nargs="+",
                     help="a Table 2 mix name or SPEC program names")
    run.add_argument("--policy", default="ICOUNT")
    run.add_argument("-n", "--instructions", type=_positive_int, default=2500,
                     help="instructions per thread (default 2500)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--phase-window", type=int, default=0,
                     help="AVF phase window in cycles (0 = off)")
    run.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write a JSONL observability trace (occupancy "
                          "samples, stage counters, audit events)")
    _add_backend_option(run)
    _add_invariant_option(run)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=range(1, 9))
    fig.add_argument("--scale", type=_positive_int, default=None,
                     help="instructions per thread (sets REPRO_SCALE)")
    _add_cache_options(fig)
    _add_resilience_options(fig)
    _add_invariant_option(fig)
    _add_backend_option(fig)

    inject = sub.add_parser("inject", help="fault-injection campaign")
    inject.add_argument("workload", nargs="+")
    inject.add_argument("--strikes", type=_non_negative_int, default=None,
                        help="injections (default: 5000 interval-replay, "
                             "24/structure live)")
    inject.add_argument("-n", "--instructions", type=_positive_int,
                        default=None,
                        help="instructions per thread (default: 2500, "
                             "or 300 live)")
    inject.add_argument("--seed", type=int, default=1)
    live_grp = inject.add_argument_group(
        "live injection (bit flips in a running simulation)")
    live_grp.add_argument("--live", action="store_true",
                          help="flip real bits mid-run and classify each "
                               "strike against a golden run "
                               "(masked/SDC/DUE/hang)")
    live_grp.add_argument("--structures", nargs="+", default=None,
                          metavar="STRUCT",
                          help="restrict live strikes to these structures "
                               "(iq rob lsq_tag lsq_data reg fu)")
    live_grp.add_argument("--protect", default="none", type=_protect_arg,
                          metavar="SCHEME|STRUCT=SCHEME,...",
                          help="protection assignment: one scheme for every "
                               "structure (none, parity, secded, dec-bch; "
                               "'ecc' is a secded alias) or a per-structure "
                               "list like iq=secded,rob=parity "
                               "(default none)")
    live_grp.add_argument("--mbu-len", type=_mbu_len, default=1,
                          metavar="N",
                          help="multi-bit upset mode: clusters of up to N "
                               "adjacent bits per strike (1-3, default 1 = "
                               "single-bit)")
    live_grp.add_argument("--force", action="append", default=[],
                          choices=["hang", "crash", "due"], metavar="KIND",
                          help="add a guaranteed-outcome probe strike "
                               "(repeatable; exercises watchdog and "
                               "containment)")
    live_grp.add_argument("--strike-batch", type=_positive_int, default=None,
                          help="strikes per supervised worker task")
    _add_cache_options(inject)
    _add_resilience_options(inject)
    _add_backend_option(inject)

    rmt = sub.add_parser("rmt", help="redundant-multithreading trade-off")
    rmt.add_argument("program")
    rmt.add_argument("-n", "--instructions", type=_positive_int, default=2000)
    rmt.add_argument("--coverage", action="store_true",
                     help="also run the strike-coverage analysis")
    rmt.add_argument("--strikes", type=_non_negative_int, default=5000)
    rmt.add_argument("--seed", type=int, default=1)

    repro = sub.add_parser("reproduce",
                           help="regenerate all paper artefacts into a directory")
    repro.add_argument("--out", default="reproduction")
    repro.add_argument("--scale", type=_positive_int, default=None)
    repro.add_argument("--only", default=None,
                       help="comma-separated artefact names (default: all)")
    _add_cache_options(repro)
    _add_resilience_options(repro)
    _add_invariant_option(repro)
    _add_backend_option(repro)

    serve = sub.add_parser("serve",
                           help="run the asyncio campaign service")
    serve.add_argument("--store", "--state-dir", dest="store",
                       default=".repro-service", metavar="DIR",
                       help="service state root (shared cache, final "
                            "artifacts, campaign manifests, and the "
                            "crash-recovery service journal)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=_non_negative_int, default=8642,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       help="worker processes per campaign pool")
    serve.add_argument("--max-running", type=_positive_int, default=4,
                       help="campaigns executing concurrently; the rest "
                            "queue FIFO within priority")
    serve.add_argument("--max-queued", type=_non_negative_int, default=64,
                       help="admission queue bound; submissions beyond it "
                            "get 429 + Retry-After")
    serve.add_argument("--lease-timeout", type=_positive_float, default=15.0,
                       help="seconds a fleet shard's batch lease lives "
                            "without a heartbeat before it is reclaimed "
                            "and redispatched")
    serve.add_argument("--hedge-after", type=_positive_float, default=30.0,
                       help="seconds a leased batch may run before a "
                            "second shard is hedged in (first valid "
                            "commit wins)")

    worker = sub.add_parser("worker",
                            help="run a fleet worker shard against a "
                                 "campaign service")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="campaign service to register with")
    worker.add_argument("--shard-id", default=None,
                        help="shard identity (default: hostname-pid)")
    worker.add_argument("--jobs", type=_positive_int, default=1,
                        help="local worker processes for batch execution")
    worker.add_argument("--heartbeat-interval", type=_positive_float,
                        default=2.0,
                        help="seconds between lease-renewal heartbeats")
    worker.add_argument("--poll-wait", type=_positive_float, default=10.0,
                        help="long-poll seconds per work request")
    worker.add_argument("--max-batches", type=_positive_int, default=None,
                        help="exit after committing this many batches "
                             "(default: run until stopped or drained)")

    submit = sub.add_parser("submit",
                            help="submit a campaign spec to a running "
                                 "service and stream its status")
    submit.add_argument("spec",
                        help="path to a JSON campaign spec ('-' for stdin)")
    submit.add_argument("--server", default="http://127.0.0.1:8642",
                        help="service base URL")
    submit.add_argument("--wait", type=_positive_int, default=60,
                        help="long-poll seconds per status request")
    submit.add_argument("--connect-timeout", type=_positive_float,
                        default=5.0,
                        help="seconds to wait for the TCP connect before "
                             "diagnosing the service as unreachable")
    submit.add_argument("--out", default=None, metavar="PATH",
                        help="write the result artifact here instead of "
                             "stdout")

    cancel = sub.add_parser("cancel",
                            help="cancel a queued or running campaign "
                                 "(finished batches stay cached)")
    cancel.add_argument("campaign", help="campaign id to cancel")
    cancel.add_argument("--server", default="http://127.0.0.1:8642",
                        help="service base URL")
    cancel.add_argument("--connect-timeout", type=_positive_float,
                        default=5.0,
                        help="seconds to wait for the TCP connect before "
                             "diagnosing the service as unreachable")

    fit = sub.add_parser("fit", help="FIT/MTTF estimate for a workload")
    fit.add_argument("workload", nargs="+")
    fit.add_argument("--policy", default="ICOUNT")
    fit.add_argument("-n", "--instructions", type=_positive_int, default=2500)
    fit.add_argument("--seed", type=int, default=1)
    fit.add_argument("--raw-fit", type=float, default=DEFAULT_RAW_FIT_PER_BIT,
                     help="raw soft-error rate per bit in FIT")
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "figure": _cmd_figure,
    "inject": _cmd_inject,
    "fit": _cmd_fit,
    "rmt": _cmd_rmt,
    "reproduce": _cmd_reproduce,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
    "submit": _cmd_submit,
    "cancel": _cmd_cancel,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse already printed its message; fold the exit into the
        # return-code contract so callers never see the exception.
        return int(exc.code or 0)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
