"""Top-level simulation API.

:func:`repro.sim.simulate` runs one SMT workload and returns a
:class:`~repro.sim.results.SimResult` bundling performance counters with the
AVF report; :func:`repro.sim.simulate_single_thread` runs one program alone
for the paper's SMT-vs-superscalar comparisons.
"""

from repro.sim.backends import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    apply_backend_env,
    core_class,
    resolve_backend,
)
from repro.sim.session import SimSession, build_core
from repro.sim.simulator import simulate, simulate_single_thread, build_traces
from repro.sim.results import SimResult, ThreadResult
from repro.sim.export import result_to_dict, result_to_json, results_to_csv
from repro.sim.compare import ResultComparison, compare_results

__all__ = [
    "simulate",
    "simulate_single_thread",
    "build_traces",
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "apply_backend_env",
    "core_class",
    "resolve_backend",
    "SimSession",
    "build_core",
    "SimResult",
    "ThreadResult",
    "result_to_dict",
    "result_to_json",
    "results_to_csv",
    "ResultComparison",
    "compare_results",
]
