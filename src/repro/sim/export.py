"""Result exporters: JSON and CSV serialisation of simulation outputs.

Downstream users typically post-process AVF results (plotting, regression
tracking, comparing design points); these helpers flatten a
:class:`~repro.sim.results.SimResult` — or a collection of them — into
stable, versioned dictionaries and CSV rows.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List

from repro.avf.structures import Structure
from repro.sim.results import SimResult

#: Bump when the exported schema changes shape.
SCHEMA_VERSION = 1


def result_to_dict(result: SimResult) -> Dict:
    """Flatten one simulation result into a JSON-serialisable dict."""
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": result.workload,
        "policy": result.policy,
        "num_threads": result.num_threads,
        "cycles": result.cycles,
        "committed": result.committed,
        "ipc": result.ipc,
        "miss_rates": {
            "dl1": result.dl1_miss_rate,
            "l2": result.l2_miss_rate,
            "il1": result.il1_miss_rate,
            "dtlb": result.dtlb_miss_rate,
        },
        "mispredict_squashes": result.mispredict_squashes,
        "avf": {s.value: result.avf.avf[s] for s in Structure},
        "utilization": {s.value: result.avf.utilization[s] for s in Structure},
        "thread_avf": {
            s.value: {str(t): v for t, v in result.avf.thread_avf[s].items()}
            for s in Structure
        },
        "threads": [
            {
                "thread_id": t.thread_id,
                "program": t.program,
                "committed": t.committed,
                "ipc": t.ipc,
                "fetched": t.fetched,
                "wrong_path_fetched": t.wrong_path_fetched,
                "branch_mispredict_rate": t.branch_mispredict_rate,
            }
            for t in result.threads
        ],
        "processor_avf": result.avf.processor_avf(),
    }


def result_to_json(result: SimResult, indent: int = 2) -> str:
    """One result as a JSON document."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


#: Column order of the CSV export (one row per simulation).
CSV_COLUMNS: List[str] = (
    ["workload", "policy", "num_threads", "cycles", "committed", "ipc",
     "dl1_miss_rate", "l2_miss_rate"]
    + [f"avf_{s.value}" for s in Structure]
)


def results_to_csv(results: Iterable[SimResult]) -> str:
    """Many results as a CSV table, one row each."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_COLUMNS)
    writer.writeheader()
    for r in results:
        row = {
            "workload": r.workload,
            "policy": r.policy,
            "num_threads": r.num_threads,
            "cycles": r.cycles,
            "committed": r.committed,
            "ipc": r.ipc,
            "dl1_miss_rate": r.dl1_miss_rate,
            "l2_miss_rate": r.l2_miss_rate,
        }
        for s in Structure:
            row[f"avf_{s.value}"] = r.avf.avf[s]
        writer.writerow(row)
    return buffer.getvalue()
