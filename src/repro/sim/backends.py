"""Cycle-kernel backend selection.

Two kernels implement the simulator's cycle loop behind the
:class:`~repro.sim.session.SimSession` facade:

``python``
    :class:`repro.pipeline.core.SMTCore` — the reference pure-Python
    kernel, one method call per pipeline event.
``vector``
    :class:`repro.sim.vector.VectorCore` — the numpy-accelerated kernel
    (flat per-structure ledgers, batched residency accrual, precomputed
    operation tables).  Byte-identical results; see
    ``docs/simulator-internals.md``.

The backend is *not* part of :class:`~repro.config.SimConfig`: a backend
changes how fast a result is computed, never what the result is, so cache
digests and golden payloads must not depend on it.  Selection is an
explicit ``backend=`` argument, or — matching ``REPRO_SCALE`` /
``REPRO_CHECK_INVARIANTS`` — the ``REPRO_BACKEND`` environment variable,
which is how the CLI's ``--backend`` flag reaches ``--jobs`` worker
processes.
"""

from __future__ import annotations

import os
from typing import Optional, Type

from repro.errors import ReproError
from repro.pipeline.core import SMTCore

#: Environment variable carrying the backend choice to worker processes.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Recognised backend names, default first.
BACKEND_NAMES = ("python", "vector")


def resolve_backend(backend: Optional[str] = None) -> str:
    """Validate an explicit choice, or read ``REPRO_BACKEND`` (default
    ``python``).

    An explicit argument always wins over the environment variable.  The
    rejection message names where the bad value came from: a typo in
    ``REPRO_BACKEND`` surfaces deep inside a worker process, far from any
    CLI flag, and "unknown backend" alone sent users hunting through the
    wrong layer.
    """
    source = "backend argument"
    if backend is None:
        env_value = os.environ.get(BACKEND_ENV_VAR)
        if env_value:
            backend = env_value
            source = f"{BACKEND_ENV_VAR} environment variable"
        else:
            backend = BACKEND_NAMES[0]
    name = backend.strip().lower()
    if name not in BACKEND_NAMES:
        raise ReproError(
            f"unknown simulation backend {backend!r} (from {source}); "
            f"known backends: {', '.join(BACKEND_NAMES)}")
    return name


def core_class(backend: Optional[str] = None) -> Type[SMTCore]:
    """The core class implementing ``backend`` (resolved via
    :func:`resolve_backend`)."""
    if resolve_backend(backend) == "vector":
        from repro.sim.vector import VectorCore

        return VectorCore
    return SMTCore


def apply_backend_env(backend: Optional[str]) -> None:
    """Export a CLI ``--backend`` choice so every simulation — including
    those fanned out to worker processes — picks it up."""
    if backend:
        os.environ[BACKEND_ENV_VAR] = resolve_backend(backend)
