"""Top-level entry points: thin wrappers over :class:`repro.sim.session.SimSession`.

Historically this module built traces, wired observers, constructed the
core and packaged results itself; all of that now lives in one place in
:mod:`repro.sim.session`.  The names re-exported here (``build_traces``,
``_functional_warmup``, ``_package``) are kept for compatibility with
existing callers and tests.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.config import MachineConfig, SimConfig
from repro.fetch.base import FetchPolicy
from repro.sim.results import SimResult
from repro.sim.session import (
    SimSession,
    WorkloadSpec,
    _program_names,
    build_traces,
    functional_warmup,
    package_result,
)
from repro.workload.generator import ThreadTrace

# Compatibility aliases for the pre-SimSession private helpers.
_functional_warmup = functional_warmup
_package = package_result

__all__ = [
    "WorkloadSpec",
    "build_traces",
    "simulate",
    "simulate_single_thread",
]


def simulate(workload: WorkloadSpec,
             policy: Union[str, FetchPolicy] = "ICOUNT",
             config: Optional[MachineConfig] = None,
             sim: Optional[SimConfig] = None,
             traces: Optional[List[ThreadTrace]] = None,
             trace_out: Optional[str] = None,
             backend: Optional[str] = None) -> SimResult:
    """Run one SMT workload to its instruction budget and report results.

    Parameters
    ----------
    workload:
        A Table 2 :class:`WorkloadMix` or a sequence of SPEC program names
        (one per SMT context).
    policy:
        Fetch policy name (``"ICOUNT"``, ``"FLUSH"``, ``"STALL"``, ``"DG"``,
        ``"PDG"``, ``"DWARN"``) or a :class:`FetchPolicy` instance.
    config, sim:
        Machine (Table 1) and run-length configuration.  Set
        ``sim.check_invariants=N`` to audit conservation laws every N
        cycles (see :mod:`repro.audit`).
    traces:
        Pre-built traces (must match the workload); mainly for tests.
    trace_out:
        Path for a JSONL observability trace (occupancy samples, stage
        counters, audit events); None disables tracing.
    backend:
        Cycle-kernel backend: ``"python"`` (reference) or ``"vector"``
        (numpy-accelerated, byte-identical results).  ``None`` reads the
        ``REPRO_BACKEND`` environment variable and defaults to
        ``"python"``; see :mod:`repro.sim.backends`.
    """
    return SimSession(workload, policy=policy, config=config, sim=sim,
                      traces=traces, trace_out=trace_out,
                      backend=backend).run()


def simulate_single_thread(program: str, instructions: int,
                           policy: Union[str, FetchPolicy] = "ICOUNT",
                           config: Optional[MachineConfig] = None,
                           seed: int = 1) -> SimResult:
    """Run one program alone on the machine (superscalar mode).

    Used for the paper's Figures 3 and 4: the single-thread run commits
    exactly the instruction count its SMT counterpart completed, so the
    amount of work is identical across execution modes.
    """
    sim = SimConfig(max_instructions=instructions, seed=seed)
    return simulate([program], policy=policy, config=config, sim=sim)
