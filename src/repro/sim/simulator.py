"""Top-level entry points: build traces, run the core, package results."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.config import DEFAULT_CONFIG, MachineConfig, SimConfig
from repro.errors import SimulationError, WorkloadError
from repro.fetch.base import FetchPolicy
from repro.fetch.registry import create_policy
from repro.isa.opcodes import OpClass
from repro.workload.address_stream import is_non_temporal
from repro.pipeline.core import SMTCore
from repro.sim.results import SimResult, ThreadResult
from repro.workload.generator import ThreadTrace, generate_trace
from repro.workload.mixes import WorkloadMix
from repro.workload.spec2000 import get_profile

WorkloadSpec = Union[WorkloadMix, Sequence[str]]


def _program_names(workload: WorkloadSpec) -> List[str]:
    if isinstance(workload, WorkloadMix):
        return list(workload.programs)
    names = list(workload)
    if not names:
        raise WorkloadError("workload must contain at least one program")
    return names


def build_traces(workload: WorkloadSpec, sim: SimConfig) -> List[ThreadTrace]:
    """Materialise one correct-path trace per context.

    Each thread's trace is as long as the whole run's instruction budget —
    a safe upper bound, since no single thread can commit more than the
    total budget.
    """
    names = _program_names(workload)
    length = sim.max_instructions + sim.warmup_instructions
    return [
        generate_trace(get_profile(name), tid, length, seed=sim.seed)
        for tid, name in enumerate(names)
    ]


def simulate(workload: WorkloadSpec,
             policy: Union[str, FetchPolicy] = "ICOUNT",
             config: Optional[MachineConfig] = None,
             sim: Optional[SimConfig] = None,
             traces: Optional[List[ThreadTrace]] = None,
             trace_out: Optional[str] = None) -> SimResult:
    """Run one SMT workload to its instruction budget and report results.

    Parameters
    ----------
    workload:
        A Table 2 :class:`WorkloadMix` or a sequence of SPEC program names
        (one per SMT context).
    policy:
        Fetch policy name (``"ICOUNT"``, ``"FLUSH"``, ``"STALL"``, ``"DG"``,
        ``"PDG"``, ``"DWARN"``) or a :class:`FetchPolicy` instance.
    config, sim:
        Machine (Table 1) and run-length configuration.  Set
        ``sim.check_invariants=N`` to audit conservation laws every N
        cycles (see :mod:`repro.audit`).
    traces:
        Pre-built traces (must match the workload); mainly for tests.
    trace_out:
        Path for a JSONL observability trace (occupancy samples, stage
        counters, audit events); None disables tracing.
    """
    config = config or DEFAULT_CONFIG
    sim = sim or SimConfig()
    names = _program_names(workload)
    if traces is None:
        traces = build_traces(workload, sim)
    if len(traces) != len(names):
        raise WorkloadError("trace count does not match workload size")
    policy_obj = create_policy(policy) if isinstance(policy, str) else policy

    core = SMTCore(traces, config, policy_obj, sim, trace_out=trace_out)
    if sim.functional_warmup:
        _functional_warmup(core, traces)
    cycles = core.run()
    return _package(core, workload, names, policy_obj, cycles)


def _functional_warmup(core: SMTCore, traces: List[ThreadTrace]) -> None:
    """Warm caches, TLBs and branch predictors with the traces' own footprint.

    Content-only: all accesses happen at cycle 0, so no residency interval
    has positive length and the AVF ledgers stay untouched; lines that remain
    resident simply enter measurement already warm — the role SimPoint
    fast-forwarding plays in the paper.

    Only the region each thread will actually execute is walked (the shared
    budget split per thread, with slack): traces are budget-length as an
    upper bound, and warming their far future would evict the near future
    that the measured window really touches.
    """
    per_thread_budget = core.sim.max_instructions * 3 // (2 * len(traces)) + 64
    for trace in traces:
        tid = trace.thread_id
        unit = core.threads[tid].branch_unit
        last_line = -1
        # Caches/TLBs: walk only the region this thread will execute —
        # warming its far future would evict the near future it touches.
        for instr in trace.instrs[:per_thread_budget]:
            line = core.mem.il1.line_address(instr.pc)
            if line != last_line:
                core.mem.fetch_access(instr.pc, 0, tid)
                last_line = line
            if instr.is_memory and not is_non_temporal(instr.mem_addr):
                core.mem.data_access(instr.mem_addr, 0, tid, instr.is_store)
        # Predictors: train over the whole trace.  A long-running program's
        # branch tables are at steady state; the tables are tiny (2-bit
        # counters), so this reaches saturation, not memorisation.
        for instr in trace.instrs:
            if instr.op is OpClass.BRANCH:
                taken, checkpoint = unit.gshare.predict(instr.pc)
                unit.gshare.resolve(instr.pc, instr.taken, taken, checkpoint)
            if instr.is_control and instr.taken:
                unit.btb.update(instr.pc, instr.target)
        # Reset counters so measured statistics exclude the warmup pass.
        unit.gshare.lookups = unit.gshare.correct = 0
    core.mem.reset_statistics()


def simulate_single_thread(program: str, instructions: int,
                           policy: Union[str, FetchPolicy] = "ICOUNT",
                           config: Optional[MachineConfig] = None,
                           seed: int = 1) -> SimResult:
    """Run one program alone on the machine (superscalar mode).

    Used for the paper's Figures 3 and 4: the single-thread run commits
    exactly the instruction count its SMT counterpart completed, so the
    amount of work is identical across execution modes.
    """
    sim = SimConfig(max_instructions=instructions, seed=seed)
    return simulate([program], policy=policy, config=config, sim=sim)


def _package(core: SMTCore, workload: WorkloadSpec, names: List[str],
             policy: FetchPolicy, cycles: int) -> SimResult:
    if cycles <= 0:
        raise SimulationError(
            f"simulation finished after {cycles} cycles; a degenerate run "
            "has no IPC (did the instruction budget round down to zero?)")
    threads = []
    for t in core.threads:
        committed = core.committed_in_window(t.id)
        threads.append(ThreadResult(
            thread_id=t.id,
            program=names[t.id],
            committed=committed,
            ipc=committed / cycles,
            fetched=t.fetched,
            wrong_path_fetched=t.wrong_path_fetched,
            branch_mispredict_rate=t.branch_unit.misprediction_rate,
        ))
    committed_total = sum(t.committed for t in threads)
    workload_name = (workload.name if isinstance(workload, WorkloadMix)
                     else "+".join(names))
    avf_report = core.engine.report(cycles)
    audit = None
    if core.auditor is not None:
        core.auditor.audit_final_report(avf_report)
        audit = core.auditor.summary_payload()
    return SimResult(
        workload=workload_name,
        policy=policy.name,
        num_threads=core.num_threads,
        cycles=cycles,
        committed=committed_total,
        ipc=committed_total / cycles,
        threads=threads,
        avf=avf_report,
        dl1_miss_rate=core.mem.dl1.miss_rate,
        l2_miss_rate=core.mem.l2.miss_rate,
        il1_miss_rate=core.mem.il1.miss_rate,
        dtlb_miss_rate=core.mem.dtlb.miss_rate,
        mispredict_squashes=core.mispredict_squashes,
        phase_series=(core.phase_tracker.series
                      if core.phase_tracker is not None else None),
        audit=audit,
    )
