"""Simulation results: performance counters joined with the AVF report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.avf.report import AvfReport
from repro.avf.structures import Structure
from repro.metrics.reliability import reliability_efficiency


@dataclass(frozen=True)
class ThreadResult:
    """Per-thread outcome of one simulation."""

    thread_id: int
    program: str
    committed: int
    ipc: float
    fetched: int
    wrong_path_fetched: int
    branch_mispredict_rate: float

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict; inverse of :meth:`from_payload`."""
        return {
            "thread_id": self.thread_id,
            "program": self.program,
            "committed": self.committed,
            "ipc": self.ipc,
            "fetched": self.fetched,
            "wrong_path_fetched": self.wrong_path_fetched,
            "branch_mispredict_rate": self.branch_mispredict_rate,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ThreadResult":
        return cls(
            thread_id=int(payload["thread_id"]),
            program=str(payload["program"]),
            committed=int(payload["committed"]),
            ipc=float(payload["ipc"]),
            fetched=int(payload["fetched"]),
            wrong_path_fetched=int(payload["wrong_path_fetched"]),
            branch_mispredict_rate=float(payload["branch_mispredict_rate"]),
        )


@dataclass
class SimResult:
    """Everything one simulation produced."""

    workload: str
    policy: str
    num_threads: int
    cycles: int
    committed: int
    ipc: float
    threads: List[ThreadResult]
    avf: AvfReport
    dl1_miss_rate: float
    l2_miss_rate: float
    il1_miss_rate: float
    dtlb_miss_rate: float
    mispredict_squashes: int
    extra: Dict[str, float] = field(default_factory=dict)
    phase_series: object = None
    """A :class:`repro.avf.phases.PhaseSeries` when the run was configured
    with ``SimConfig(phase_window_cycles > 0)``, else None."""
    audit: Optional[Dict[str, object]] = None
    """Audit record (invariant-check counts, stage counters, occupancy
    peaks) when the run was configured with ``SimConfig(check_invariants >
    0)`` or an event trace; None otherwise.  Auditing is observation-only:
    every other field is byte-identical with or without it."""

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict for the on-disk result cache.

        ``phase_series`` is deliberately not serialized: cached experiment
        runs never enable phase tracking, and the series is unbounded in
        size.  :meth:`from_payload` restores it as ``None``.
        """
        payload: Dict[str, object] = {
            "workload": self.workload,
            "policy": self.policy,
            "num_threads": self.num_threads,
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "threads": [t.to_payload() for t in self.threads],
            "avf": self.avf.to_payload(),
            "dl1_miss_rate": self.dl1_miss_rate,
            "l2_miss_rate": self.l2_miss_rate,
            "il1_miss_rate": self.il1_miss_rate,
            "dtlb_miss_rate": self.dtlb_miss_rate,
            "mispredict_squashes": self.mispredict_squashes,
            "extra": dict(self.extra),
        }
        # Only audited runs carry the key, so unaudited payloads (and the
        # on-disk cache entries they hash to) are unchanged by the audit
        # layer's existence.
        if self.audit is not None:
            payload["audit"] = dict(self.audit)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "SimResult":
        """Inverse of :meth:`to_payload`."""
        return cls(
            workload=str(payload["workload"]),
            policy=str(payload["policy"]),
            num_threads=int(payload["num_threads"]),
            cycles=int(payload["cycles"]),
            committed=int(payload["committed"]),
            ipc=float(payload["ipc"]),
            threads=[ThreadResult.from_payload(t) for t in payload["threads"]],
            avf=AvfReport.from_payload(payload["avf"]),
            dl1_miss_rate=float(payload["dl1_miss_rate"]),
            l2_miss_rate=float(payload["l2_miss_rate"]),
            il1_miss_rate=float(payload["il1_miss_rate"]),
            dtlb_miss_rate=float(payload["dtlb_miss_rate"]),
            mispredict_squashes=int(payload["mispredict_squashes"]),
            extra={str(k): float(v)
                   for k, v in dict(payload.get("extra", {})).items()},
            phase_series=None,
            audit=payload.get("audit"),
        )

    def thread_ipcs(self) -> Tuple[float, ...]:
        return tuple(t.ipc for t in self.threads)

    def efficiency(self, structure: Structure) -> float:
        """Reliability efficiency IPC/AVF for one structure."""
        return reliability_efficiency(self.ipc, self.avf.avf[structure])

    def structure_avf(self, structure: Structure) -> float:
        return self.avf.avf[structure]

    def utilization_bound(self, structure: Structure) -> float:
        """Upper bound on the structure's AVF: its occupied fraction.

        ACE residency is a subset of occupancy, so ``avf <= utilization``
        always holds (modulo floating-point rounding); invariant tests lean
        on this.
        """
        return self.avf.utilization[structure] + 1e-9

    def summary(self) -> str:
        head = (f"{self.workload} [{self.policy}] "
                f"cycles={self.cycles} committed={self.committed} ipc={self.ipc:.3f} "
                f"dl1_miss={self.dl1_miss_rate:.3f} l2_miss={self.l2_miss_rate:.3f}")
        return head + "\n" + self.avf.format_table()
