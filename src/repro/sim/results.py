"""Simulation results: performance counters joined with the AVF report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.avf.report import AvfReport
from repro.avf.structures import Structure
from repro.metrics.reliability import reliability_efficiency


@dataclass(frozen=True)
class ThreadResult:
    """Per-thread outcome of one simulation."""

    thread_id: int
    program: str
    committed: int
    ipc: float
    fetched: int
    wrong_path_fetched: int
    branch_mispredict_rate: float


@dataclass
class SimResult:
    """Everything one simulation produced."""

    workload: str
    policy: str
    num_threads: int
    cycles: int
    committed: int
    ipc: float
    threads: List[ThreadResult]
    avf: AvfReport
    dl1_miss_rate: float
    l2_miss_rate: float
    il1_miss_rate: float
    dtlb_miss_rate: float
    mispredict_squashes: int
    extra: Dict[str, float] = field(default_factory=dict)
    phase_series: object = None
    """A :class:`repro.avf.phases.PhaseSeries` when the run was configured
    with ``SimConfig(phase_window_cycles > 0)``, else None."""

    def thread_ipcs(self) -> Tuple[float, ...]:
        return tuple(t.ipc for t in self.threads)

    def efficiency(self, structure: Structure) -> float:
        """Reliability efficiency IPC/AVF for one structure."""
        return reliability_efficiency(self.ipc, self.avf.avf[structure])

    def structure_avf(self, structure: Structure) -> float:
        return self.avf.avf[structure]

    def utilization_bound(self, structure: Structure) -> float:
        """Upper bound on the structure's AVF: its occupied fraction.

        ACE residency is a subset of occupancy, so ``avf <= utilization``
        always holds (modulo floating-point rounding); invariant tests lean
        on this.
        """
        return self.avf.utilization[structure] + 1e-9

    def summary(self) -> str:
        head = (f"{self.workload} [{self.policy}] "
                f"cycles={self.cycles} committed={self.committed} ipc={self.ipc:.3f} "
                f"dl1_miss={self.dl1_miss_rate:.3f} l2_miss={self.l2_miss_rate:.3f}")
        return head + "\n" + self.avf.format_table()
