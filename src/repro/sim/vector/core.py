"""The vector backend's cycle kernel.

:class:`VectorCore` subclasses :class:`~repro.pipeline.core.SMTCore` and
replaces :meth:`run` with a hand-inlined mirror of the reference loop.
It mutates the *same* structures (the shared issue queue's entry list,
each thread's ROB/LSQ deques, the register file's metadata dict), in the
same order, with the same intermediate states — which is what makes it
byte-identical, including under reentrant squashes (the FLUSH policy's
``on_l2_miss`` fires mid-issue and rewinds structures the issue loop is
scanning).  What it removes is *dispatch overhead*, the dominant cost of
the Python kernel:

* per-instruction enum hashing and property calls are replaced by bit
  tests on the packed metadata of :mod:`repro.sim.vector.tables`
  (``execution_latency`` alone rebuilt a 14-entry dict per call);
* per-event probe calls are replaced by list appends into a
  :class:`~repro.sim.vector.ledger.BatchResidencyProbe`, reduced with
  numpy at the end of the run;
* per-cycle method calls (stage methods, structure accessors, no-op
  policy hooks) are inlined or skipped when the policy doesn't override
  them.

The fast loop only supports the single-subscriber probe wiring with no
lifecycle hooks — the plain "simulate and report AVF" configuration that
figures, reproductions and benchmarks run thousands of times.  Any other
wiring (interval recording, auditing, phase tracking, taint/live
injection, extra observers) transparently falls back to the inherited
reference loop, so every observer keeps working against this backend.
"""

from __future__ import annotations

from repro.avf.engine import AvfEngine
from repro.errors import SimulationError, StructureError
from repro.fetch.base import FetchPolicy
from repro.fetch.icount import IcountPolicy
from repro.instrument.structures import Structure
from repro.isa.opcodes import FUType
from repro.pipeline.core import SMTCore
from repro.pipeline.frontend import DECODE_BUFFER_ENTRIES
from repro.structures.regfile import FP_REG_BASE, _PhysReg
from repro.sim.vector.ledger import BatchResidencyProbe
from repro.sim.vector.tables import (
    ACE_BIT,
    CTRL_BIT,
    FU_MASK,
    FU_SHIFT,
    LAT_SHIFT,
    LOADLIKE_BIT,
    MEM_BIT,
    NOP_BIT,
    STORE_BIT,
    annotate_trace,
    op_meta_table,
)

_WORD_MASK = ~0x7  # store-to-load forwarding granularity (lsq._WORD_MASK)


class VectorCore(SMTCore):
    """Numpy-accelerated drop-in for :class:`SMTCore` (``--backend vector``)."""

    def run(self) -> int:
        if not self._fast_path_eligible():
            return super().run()
        return self._vector_run()

    def _fast_path_eligible(self) -> bool:
        """True when the fast loop reproduces the reference loop exactly.

        The conditions mirror the probe bus's single-subscriber fast path:
        the AVF engine is the only residency observer and the only
        lifecycle hook, so batching residency events cannot reorder
        anything another observer could see.
        """
        ins = self.instruments
        engine = ins.ledger
        if engine is None or ins.probe is not engine:
            return False
        if not isinstance(engine, AvfEngine) or engine.record_intervals:
            return False
        if ins.taint or ins.recorder is not None:
            return False
        if ins.cycle_hooks or ins.commit_hooks or ins.finalize_hooks:
            return False
        if any(hook is not engine for hook in ins.reset_hooks):
            return False
        if self.sim.warmup_instructions and not ins.reset_hooks:
            return False
        # The analytic functional-unit accounting below assumes a fresh
        # core: no cycles simulated, no in-flight events or reservations.
        if self.cycle != 0 or self._events or self._iq._entries:
            return False
        if any(self._fu_pool._busy.values()):
            return False
        return True

    # Set by the fast loop (a closure over its local state) so reentrant
    # squashes — mispredict recovery fires from the writeback stage, the
    # FLUSH policy's hook from mid-issue — can patch the analytic
    # functional-unit credits and the ready-entry count.
    _vec_squash_fix = None

    def squash_after(self, boundary) -> None:
        super().squash_after(boundary)
        fix = self._vec_squash_fix
        if fix is not None:
            fix()

    def _vector_run(self) -> int:  # noqa: C901 - deliberately one flat loop
        config = self.config
        sim = self.sim
        mem = self.mem
        threads = self.threads
        num_threads = self.num_threads
        engine = self.instruments.ledger
        policy = self.policy
        policy_cls = type(policy)

        op_meta = op_meta_table(config)
        for t in threads:
            annotate_trace(t.trace.instrs, op_meta)

        batch = BatchResidencyProbe(engine, num_threads)

        # Policy hooks the reference loop calls unconditionally; skip the
        # base-class no-ops entirely, call overridden ones at the same spot.
        on_fetch = (policy.on_fetch
                    if policy_cls.on_fetch is not FetchPolicy.on_fetch else None)
        on_l2_miss = (policy.on_l2_miss
                      if policy_cls.on_l2_miss is not FetchPolicy.on_l2_miss
                      else None)
        on_load_resolved = (
            policy.on_load_resolved
            if policy_cls.on_load_resolved is not FetchPolicy.on_load_resolved
            else None)
        # ICOUNT's ordering (the default every other policy builds on) is
        # inlined in the fetch stage below; any overriding policy is called.
        inline_icount = (
            policy_cls.priorities is IcountPolicy.priorities
            and policy_cls.icount_order is FetchPolicy.icount_order)
        priorities = policy.priorities

        # Structure internals, aliased once.  Every mutation below goes to
        # these live objects so squash/drain/policy code sees true state.
        iq = self._iq
        iq_list = iq._entries
        iq_per_thread = iq._per_thread
        iq_cap = iq.capacity
        regfile = self._regfile
        reg_meta = regfile._meta
        int_free = regfile._int_free
        fp_free = regfile._fp_free
        int_regs = regfile.int_regs
        rename_maps = regfile._rename
        pool = self._fu_pool
        fu_order = tuple(FUType)
        busy_lists = [pool._busy[fu] for fu in fu_order]
        fu_counts = [pool._counts[fu] for fu in fu_order]
        num_fu_types = len(fu_order)
        robs = [t.rob for t in threads]
        lsqs = [t.lsq for t in threads]
        rob_entries_by = [t.rob._entries for t in threads]
        lsq_entries_by = [t.lsq._entries for t in threads]
        rob_cap = config.rob_entries
        lsq_cap = config.lsq_entries
        trace_instrs = [t.trace.instrs for t in threads]
        trace_lens = [len(t.trace) for t in threads]
        events = self._events
        waiters = self._waiters
        rotations = self._rotations

        data_access = mem.data_access
        fetch_access = mem.fetch_access
        line_address = mem.il1.line_address
        dl1_ports = mem.config.dl1.ports

        occupancy = batch.occupancy
        rob_append = occupancy.setdefault(Structure.ROB, []).append
        iq_append = occupancy.setdefault(Structure.IQ, []).append
        tag_append = occupancy.setdefault(Structure.LSQ_TAG, []).append
        data_append = occupancy.setdefault(Structure.LSQ_DATA, []).append
        reg_append = batch.reg_events.append
        fu_ace = batch.fu_ace
        fu_unace = batch.fu_unace

        commit_width = config.commit_width
        issue_width = config.issue_width
        fetch_width = config.fetch_width
        fetch_tpc = config.fetch_threads_per_cycle
        decode_latency = config.decode_latency
        agen = config.agen_latency
        store_when = agen + 1 if agen + 1 > 1 else 1  # _schedule's max(.., 1)
        iq_partition = (config.iq_entries // num_threads
                        if config.iq_partitioned else None)
        max_instructions = sim.max_instructions
        max_cycles = sim.max_cycles
        warmup_target = sim.warmup_instructions
        warmup_done = self._warmup_done
        reset_hooks = self.instruments.reset_hooks

        issued_ops = 0
        busy_unit_cycles = 0

        # Analytic functional-unit accounting.  The reference pool walks
        # every reservation every cycle; a reservation issued at cycle
        # ``i`` with latency ``lat`` is walked on exactly the ticks
        # ``i .. r`` where ``r = i + lat - 1`` (``i`` when ``lat <= 1``),
        # so the fast loop credits all ``max(lat, 1)`` busy cycles once at
        # issue and keeps only per-unit *counts* for the availability
        # check, decremented from ``fu_release`` buckets keyed by ``r``.
        # ``fu_records`` ([end_stamp, r, instr, counted_ace] per
        # reservation) lets squashes, the measurement-window reset and the
        # end of the run re-attribute the pre-credited ticks exactly as
        # the per-cycle walk would have observed them; ``demoted`` tracks
        # squash-demoted records so a refetch of the same trace
        # instruction (FLUSH re-fetches what it squashed) restores the
        # ticks the walk would again see as ACE.
        fu_records = [[] for _ in range(num_fu_types)]
        fu_release = {}
        # Persistent per-unit availability (the pool is empty at run
        # start): multi-cycle reservations decrement it until their
        # ``fu_release`` bucket fires; single-cycle ones are restored at
        # the end of the issue scan (they never span a cycle boundary).
        avail = list(fu_counts)
        avail_undo = []
        demoted = {}
        ready_count = 0
        commit_rr = self._commit_rr
        dispatch_rr = self._dispatch_rr
        max_cycles1 = max_cycles + 1
        # Idle stretches can be skipped (event-driven) only when every
        # per-cycle side effect of the reference loop is state-invariant:
        # ICOUNT's priorities are pure, and no policy hook can fire.
        can_jump = (inline_icount and on_fetch is None
                    and on_l2_miss is None and on_load_resolved is None)

        def _squash_fix() -> None:
            """Re-sync analytic state after a squash (see squash_after)."""
            nonlocal ready_count
            c = self.cycle
            n = 0
            for entry in iq_list:
                if entry.pending_srcs == 0:
                    n += 1
            ready_count = n
            for i in range(num_fu_types):
                records = fu_records[i]
                if not records:
                    continue
                live = []
                for rec in records:
                    r = rec[1]
                    if r < c:
                        continue
                    if rec[3] and rec[2].squashed:
                        # The walk would see ``squashed`` from this cycle
                        # on: ticks ``c .. r`` move to the un-ACE bucket.
                        move = r - c + 1
                        tid = rec[2].thread_id
                        fu_ace[tid] -= move
                        fu_unace[tid] += move
                        rec[3] = False
                        bucket = demoted.get(rec[2])
                        if bucket is None:
                            bucket = demoted[rec[2]] = []
                        bucket.append(rec)
                    live.append(rec)
                if len(live) != len(records):
                    records[:] = live

        # Route every residency event the loop does *not* inline (squash
        # and drain paths call structure methods) into the batch probe.
        swap_targets = [iq, regfile, pool] + robs + lsqs
        saved_probes = [obj._probe for obj in swap_targets]
        for obj in swap_targets:
            obj._probe = batch
        self._vec_squash_fix = _squash_fix
        try:
            while True:
                # -- done? (SMTCore._done, ThreadContext.finished inlined) --
                if self.total_committed >= max_instructions:
                    break
                for t in threads:
                    if (t.wrong_path or t.fetch_index < trace_lens[t.id]
                            or rob_entries_by[t.id] or t.decode_queue):
                        break
                else:
                    break

                cycle = self.cycle + 1
                self.cycle = cycle
                if cycle > max_cycles:
                    raise SimulationError(
                        f"exceeded max_cycles={max_cycles} "
                        f"(committed {self.total_committed})")
                mem._cycle = cycle  # MemoryHierarchy.begin_cycle
                dl1_used = 0
                idle = True

                # -- commit (SMTCore._commit) --
                budget = commit_width
                order = rotations[commit_rr % num_threads]
                commit_rr += 1
                for tid in order:
                    if budget == 0:
                        break
                    rob_entries = rob_entries_by[tid]
                    if not rob_entries:
                        continue
                    t = threads[tid]
                    lsq_entries = lsq_entries_by[tid]
                    while budget > 0 and rob_entries:
                        head = rob_entries[0]
                        completed = head.completed_at
                        if completed < 0 or completed >= cycle:
                            break
                        meta_bits = head.iq_slot
                        if meta_bits & STORE_BIT and not head.wrong_path:
                            if dl1_used >= dl1_ports:  # mem.claim_dl1_port
                                break
                            dl1_used += 1
                            data_access(head.mem_addr, cycle, tid,
                                        is_write=True)
                        rob_entries.popleft()
                        ace = (meta_bits & ACE_BIT) != 0
                        rob_append((tid, head.renamed_at, cycle, ace))
                        if meta_bits & MEM_BIT:
                            lsq_entries.popleft()
                            tag_append((tid, head.renamed_at, cycle, ace))
                            data_append((tid, completed, cycle, ace))
                            data_append((tid, head.renamed_at, completed,
                                         False))
                        old = head.old_phys_dest
                        if old is not None:
                            reg = reg_meta.pop(old, None)
                            if reg is None:
                                raise StructureError(
                                    f"double free of phys reg {old}")
                            reg_append((reg.thread_id, reg.alloc_cycle,
                                        reg.written_cycle, reg.last_ace_read,
                                        cycle,
                                        reg.last_ace_read > reg.written_cycle
                                        >= 0))
                            (fp_free if old >= int_regs
                             else int_free).append(old)
                        head.committed_at = cycle
                        t.committed += 1
                        self.total_committed += 1
                        budget -= 1
                        if (not warmup_done
                                and self.total_committed >= warmup_target):
                            # SMTCore._maybe_end_warmup
                            warmup_done = True
                            self._warmup_done = True
                            self.measure_start_cycle = cycle
                            batch.clear()
                            for hook in reset_hooks:
                                hook.on_reset(cycle)
                            self._committed_at_measure_start = [
                                th.committed for th in threads]
                            # Reservations still busy tick on into the
                            # fresh window: re-credit their remaining
                            # ``cycle .. r`` ticks (the pool walk runs
                            # after this commit stage), drop the rest.
                            for i in range(num_fu_types):
                                records = fu_records[i]
                                if not records:
                                    continue
                                live = []
                                for rec in records:
                                    r = rec[1]
                                    if r >= cycle:
                                        cred = r - cycle + 1
                                        if rec[3]:
                                            fu_ace[rec[2].thread_id] += cred
                                        else:
                                            fu_unace[rec[2].thread_id] += cred
                                        live.append(rec)
                                records[:] = live
                if budget != commit_width:
                    idle = False

                # -- writeback (SMTCore._writeback) --
                pending = events.pop(cycle, None)
                if pending is not None:
                    idle = False
                    for instr, stamp, dl1_miss, l2_miss in pending:
                        self.writebacks_total += 1
                        t = threads[instr.thread_id]
                        if dl1_miss:
                            t.outstanding_l1d -= 1
                        if l2_miss:
                            t.outstanding_l2 -= 1
                        if instr.squashed or instr.fetch_stamp != stamp:
                            continue
                        meta_bits = instr.iq_slot
                        if meta_bits & LOADLIKE_BIT and on_load_resolved:
                            on_load_resolved(self, instr)
                        instr.completed_at = cycle
                        phys = instr.phys_dest
                        if phys is not None:
                            reg = reg_meta.get(phys)
                            if reg is None:
                                raise StructureError(
                                    f"writeback to unallocated phys reg "
                                    f"{phys}")
                            reg.ready = True
                            reg.tag = 0
                            if reg.written_cycle < 0:
                                reg.written_cycle = cycle
                            waiting = waiters.pop(phys, None)
                            if waiting:
                                for consumer, cstamp in waiting:
                                    if (consumer.fetch_stamp == cstamp
                                            and not consumer.squashed):
                                        left = consumer.pending_srcs - 1
                                        consumer.pending_srcs = left
                                        # Now ready; NOPs never enter the
                                        # IQ, so they don't count.
                                        if (left == 0 and not
                                                (consumer.iq_slot
                                                 & NOP_BIT)):
                                            ready_count += 1
                        if meta_bits & CTRL_BIT:
                            self._resolve_control(t, instr)

                # -- issue (SMTCore._issue) --
                # The reference scan over the IQ has no side effects when
                # no entry has ``pending_srcs == 0``, so it can be skipped
                # outright; ``ready_count`` tracks exactly that.
                if ready_count:
                    budget = issue_width
                    for instr in tuple(iq_list):
                        if budget == 0:
                            break
                        if instr.squashed or instr.pending_srcs > 0:
                            continue
                        meta_bits = instr.iq_slot
                        fu = (meta_bits >> FU_SHIFT) & FU_MASK
                        if avail[fu] <= 0:
                            continue
                        tid = instr.thread_id
                        if meta_bits & LOADLIKE_BIT:
                            # SMTCore._issue_load + lsq.forwarding_store
                            t = threads[tid]
                            addr = instr.mem_addr & _WORD_MASK
                            load_stamp = instr.fetch_stamp
                            store = None
                            for entry in reversed(lsq_entries_by[tid]):
                                if entry.fetch_stamp >= load_stamp:
                                    continue
                                if (entry.iq_slot & STORE_BIT
                                        and (entry.mem_addr & _WORD_MASK)
                                        == addr):
                                    store = entry
                                    break
                            if store is not None:
                                if store.completed_at < 0:
                                    continue  # wait for the store's data
                                lsqs[tid].forwards += 1
                                when = cycle + store_when
                                bucket = events.get(when)
                                if bucket is None:
                                    bucket = events[when] = []
                                bucket.append((instr, load_stamp, False,
                                               False))
                            else:
                                if dl1_used >= dl1_ports:
                                    continue  # mem.claim_dl1_port
                                dl1_used += 1
                                result = data_access(instr.mem_addr,
                                                     cycle + 1, tid,
                                                     is_write=False)
                                dl1_miss = result.dl1_miss
                                l2_miss = result.l2_miss
                                instr.dl1_missed = dl1_miss
                                instr.l2_missed = l2_miss
                                if dl1_miss:
                                    t.outstanding_l1d += 1
                                if l2_miss:
                                    t.outstanding_l2 += 1
                                    if not instr.wrong_path and on_l2_miss:
                                        on_l2_miss(self, instr)
                                latency = agen + result.latency
                                when = cycle + (latency if latency > 1 else 1)
                                bucket = events.get(when)
                                if bucket is None:
                                    bucket = events[when] = []
                                bucket.append((instr, load_stamp, dl1_miss,
                                               l2_miss))
                        elif meta_bits & STORE_BIT:
                            when = cycle + store_when
                            bucket = events.get(when)
                            if bucket is None:
                                bucket = events[when] = []
                            bucket.append((instr, instr.fetch_stamp, False,
                                           False))
                        else:
                            latency = meta_bits >> LAT_SHIFT
                            when = cycle + (latency if latency > 1 else 1)
                            bucket = events.get(when)
                            if bucket is None:
                                bucket = events[when] = []
                            bucket.append((instr, instr.fetch_stamp, False,
                                           False))
                        lat = meta_bits >> LAT_SHIFT
                        ace = (meta_bits & ACE_BIT) != 0
                        if lat > 1:
                            r = cycle + lat - 1
                            bucket = fu_release.get(r)
                            if bucket is None:
                                bucket = fu_release[r] = []
                            bucket.append(fu)
                            busy_unit_cycles += lat
                            if ace:
                                fu_ace[tid] += lat
                            else:
                                fu_unace[tid] += lat
                        else:
                            # Released on this cycle's walk: never busy at
                            # a later availability check, exactly 1 tick.
                            r = cycle
                            avail_undo.append(fu)
                            busy_unit_cycles += 1
                            if ace:
                                fu_ace[tid] += 1
                            else:
                                fu_unace[tid] += 1
                        fu_records[fu].append([cycle + lat, r, instr, ace])
                        issued_ops += 1
                        avail[fu] -= 1
                        if ace:
                            # regfile.note_read (no-op for un-ACE readers)
                            for phys in instr.phys_srcs:
                                if phys is not None:
                                    reg = reg_meta.get(phys)
                                    if (reg is not None
                                            and cycle > reg.last_ace_read):
                                        reg.last_ace_read = cycle
                        instr.issued_at = cycle
                        iq_list.remove(instr)
                        iq_per_thread[tid] -= 1
                        ready_count -= 1
                        iq_append((tid, instr.renamed_at, cycle, ace))
                        budget -= 1
                    if avail_undo:
                        for i in avail_undo:
                            avail[i] += 1
                        del avail_undo[:]
                    # A scan that issued nothing had no side effects (the
                    # reference loop's has none either); ready entries are
                    # all FU-blocked or waiting on store data, both of
                    # which wake at a known future cycle.
                    if budget != issue_width:
                        idle = False

                # -- functional units (FunctionalUnitPool.tick) --
                # Busy/ACE accrual is analytic (see above); the walk's only
                # remaining job is freeing units whose reservations lapse.
                released = fu_release.pop(cycle, None)
                if released is not None:
                    for i in released:
                        avail[i] += 1

                # -- rename/dispatch (SMTCore._rename_dispatch) --
                budget = issue_width
                order = rotations[dispatch_rr % num_threads]
                dispatch_rr += 1
                for tid in order:
                    if budget == 0:
                        break
                    t = threads[tid]
                    decode_queue = t.decode_queue
                    if not decode_queue:
                        continue
                    rob = robs[tid]
                    rob_entries = rob_entries_by[tid]
                    lsq = lsqs[tid]
                    lsq_entries = lsq_entries_by[tid]
                    rmap = rename_maps[tid]
                    while budget > 0 and decode_queue:
                        ready_cycle, instr = decode_queue[0]
                        if ready_cycle > cycle:
                            break
                        if len(rob_entries) >= rob_cap:
                            break
                        meta_bits = instr.iq_slot
                        if meta_bits & MEM_BIT and len(lsq_entries) >= lsq_cap:
                            break
                        needs_iq = not (meta_bits & NOP_BIT)
                        if needs_iq:
                            if len(iq_list) >= iq_cap:
                                break
                            if (iq_partition is not None
                                    and iq_per_thread.get(tid, 0)
                                    >= iq_partition):
                                break
                        # regfile.rename, inlined
                        dest = instr.dest_reg
                        if dest is not None:
                            free = (fp_free if dest >= FP_REG_BASE
                                    else int_free)
                            if not free:
                                break
                            instr.phys_srcs = tuple(
                                rmap.get(src) for src in instr.src_regs)
                            phys = free.pop()
                            reg_meta[phys] = _PhysReg(tid, cycle)
                            instr.old_phys_dest = rmap.get(dest)
                            instr.phys_dest = phys
                            rmap[dest] = phys
                        else:
                            instr.phys_srcs = tuple(
                                rmap.get(src) for src in instr.src_regs)
                        decode_queue.popleft()
                        instr.renamed_at = cycle
                        pending_srcs = 0
                        for phys in instr.phys_srcs:
                            if phys is not None:
                                reg = reg_meta.get(phys)
                                if reg is not None and not reg.ready:
                                    pending_srcs += 1
                                    waiting = waiters.get(phys)
                                    if waiting is None:
                                        waiting = waiters[phys] = []
                                    waiting.append((instr, instr.fetch_stamp))
                        instr.pending_srcs = pending_srcs
                        instr.rob_index = len(rob_entries)
                        rob_entries.append(instr)
                        occupied = len(rob_entries)
                        if occupied > rob.peak_occupancy:
                            rob.peak_occupancy = occupied
                        if meta_bits & MEM_BIT:
                            lsq_entries.append(instr)
                            occupied = len(lsq_entries)
                            if occupied > lsq.peak_occupancy:
                                lsq.peak_occupancy = occupied
                        if needs_iq:
                            iq_list.append(instr)
                            iq_per_thread[tid] = (
                                iq_per_thread.get(tid, 0) + 1)
                            if pending_srcs == 0:
                                ready_count += 1
                            occupied = len(iq_list)
                            if occupied > iq.peak_occupancy:
                                iq.peak_occupancy = occupied
                        else:
                            instr.completed_at = cycle  # NOPs complete here
                        self.dispatched_total += 1
                        budget -= 1
                if budget != issue_width:
                    idle = False

                # -- fetch (SMTCore._fetch / _fetch_thread) --
                if inline_icount:
                    # IcountPolicy.priorities: fetchable threads sorted by
                    # (front-end + IQ count, tid).  ``finished`` implies
                    # ``fetch_exhausted``, so one test covers both.
                    eligible = [
                        ((len(t.decode_queue)
                          + iq_per_thread.get(t.id, 0)), t.id)
                        for t in threads
                        if (t.wrong_path or t.fetch_index < trace_lens[t.id])
                        and t.fetch_blocked_until <= cycle
                        and len(t.decode_queue) < DECODE_BUFFER_ENTRIES]
                    eligible.sort()
                    order = [tid for _, tid in eligible]
                else:
                    order = priorities(self)
                remaining = fetch_width
                threads_used = 0
                for tid in order:
                    if threads_used >= fetch_tpc or remaining <= 0:
                        break
                    t = threads[tid]
                    decode_queue = t.decode_queue
                    room = DECODE_BUFFER_ENTRIES - len(decode_queue)
                    count = 0
                    current_line = None
                    instrs = trace_instrs[tid]
                    trace_len = trace_lens[tid]
                    while count < remaining and room > 0:
                        if t.fetch_blocked_until > cycle:
                            break
                        wrong = t.wrong_path
                        if wrong:
                            pc = t.wrong_pc
                        else:
                            fetch_index = t.fetch_index
                            if fetch_index >= trace_len:
                                break
                            instr = instrs[fetch_index]
                            pc = instr.pc
                        line = line_address(pc)
                        if line != current_line:
                            if line == t.line_buffer:
                                current_line = line
                            else:
                                result = fetch_access(pc, cycle, tid)
                                if result.blocks_fetch:
                                    t.fetch_blocked_until = (
                                        cycle + result.latency)
                                    t.line_buffer = line
                                    break
                                current_line = line
                                t.line_buffer = -1
                        if wrong:
                            instr = t.synth.synthesize(pc)
                            t.wrong_pc = t.clamp_pc(pc + 4)
                            t.wrong_path_fetched += 1
                            meta_bits = op_meta[instr.op.value]
                            instr.iq_slot = meta_bits
                        else:
                            meta_bits = instr.iq_slot
                            if demoted:
                                # Refetch of a squash-demoted instruction:
                                # the pool walk sees it un-squashed again
                                # from the next tick on, so ticks
                                # ``cycle+1 .. r`` return to ACE.
                                rlist = demoted.pop(instr, None)
                                if rlist is not None:
                                    for rec in rlist:
                                        back = rec[1] - cycle
                                        if back > 0:
                                            rec[3] = True
                                            fu_ace[tid] += back
                                            fu_unace[tid] -= back
                            # SMTCore._reset_pipeline_state (iq_slot kept)
                            instr.fetched_at = -1
                            instr.renamed_at = -1
                            instr.issued_at = -1
                            instr.completed_at = -1
                            instr.committed_at = -1
                            instr.phys_dest = None
                            instr.old_phys_dest = None
                            instr.phys_srcs = ()
                            instr.squashed = False
                            instr.mispredicted = False
                            instr.dl1_missed = False
                            instr.l2_missed = False
                            instr.prediction = None
                            instr.pending_srcs = 0
                            instr.value_tag = 0
                            t.fetch_index = fetch_index + 1
                        instr.fetch_stamp = t.next_fetch_stamp
                        t.next_fetch_stamp += 1
                        t.fetched += 1
                        instr.fetched_at = cycle
                        decode_queue.append((cycle + decode_latency, instr))
                        room -= 1
                        count += 1
                        if on_fetch:
                            on_fetch(self, instr)
                        if meta_bits & CTRL_BIT:
                            # SMTCore._predict_control
                            prediction = t.branch_unit.predict(instr)
                            instr.prediction = prediction
                            if prediction.mispredicts(instr):
                                instr.mispredicted = True
                                t.wrong_path = True
                                t.pending_branch = instr
                                if (prediction.taken
                                        and prediction.target is not None):
                                    t.wrong_pc = t.clamp_pc(prediction.target)
                                else:
                                    t.wrong_pc = t.clamp_pc(instr.pc + 4)
                                break
                            if prediction.taken:
                                break
                    if count:
                        remaining -= count
                        threads_used += 1
                if threads_used:
                    idle = False

                # -- idle fast-forward --
                # A cycle with no commits, writebacks, issues (or ready
                # entries), dispatches or fetches changes nothing the next
                # cycle can observe: under ICOUNT (pure priorities, no
                # hooks) the reference loop would spin unchanged until the
                # next writeback event, decode-ready instruction, I-cache
                # refill or commit-eligible ROB head.  Jump straight
                # there, advancing the round-robin counters by the cycles
                # the reference loop would have burned.
                if idle and can_jump:
                    target = max_cycles1
                    if events:
                        when = min(events)
                        if when < target:
                            target = when
                    if ready_count and fu_release:
                        # Ready entries blocked on a busy unit can issue
                        # the cycle after its earliest release.
                        when = min(fu_release) + 1
                        if when < target:
                            target = when
                    for t in threads:
                        rob_entries = rob_entries_by[t.id]
                        if rob_entries:
                            completed = rob_entries[0].completed_at
                            if completed >= 0:
                                when = completed + 1
                                if when < target:
                                    target = when
                        decode_queue = t.decode_queue
                        if decode_queue:
                            when = decode_queue[0][0]
                            if cycle < when < target:
                                target = when
                        when = t.fetch_blocked_until
                        if cycle < when < target:
                            target = when
                    if target > cycle + 1:
                        import repro.sim.vector.core as _m
                        _m._JUMPS = getattr(_m, "_JUMPS", 0) + 1
                        _m._SKIPPED = getattr(_m, "_SKIPPED", 0) + (target - cycle - 1)
                        if fu_release:
                            for when in [w for w in fu_release
                                         if w < target]:
                                for i in fu_release.pop(when):
                                    avail[i] += 1
                        skipped = target - cycle - 1
                        commit_rr += skipped
                        dispatch_rr += skipped
                        self.cycle = target - 1

            # The reference pool stops walking reservations at the final
            # cycle; take back the analytic over-credit for reservations
            # that outlive the run and leave them in the pool's busy
            # lists, as the reference loop would.
            final_cycle = self.cycle
            for i in range(num_fu_types):
                tail = None
                for rec in fu_records[i]:
                    r = rec[1]
                    if r > final_cycle:
                        over = r - final_cycle
                        busy_unit_cycles -= over
                        if rec[3]:
                            fu_ace[rec[2].thread_id] -= over
                        else:
                            fu_unace[rec[2].thread_id] -= over
                        if tail is None:
                            tail = []
                        tail.append((rec[0], rec[2]))
                if tail is not None:
                    busy_lists[i][:] = tail

            self._drain()
            batch.flush()
        finally:
            self._vec_squash_fix = None
            self._commit_rr = commit_rr
            self._dispatch_rr = dispatch_rr
            for obj, probe in zip(swap_targets, saved_probes):
                obj._probe = probe
        pool.issued_ops += issued_ops
        pool.busy_unit_cycles += busy_unit_cycles
        return self.measured_cycles
