"""Precomputed per-operation metadata for the vector kernel.

The Python kernel re-derives everything from the :class:`OpClass` enum on
every touch (``execution_latency`` even rebuilds its latency table per
call).  The vector kernel instead packs all static per-instruction facts
into one small integer, stored in the otherwise-unused ``DynInstr.iq_slot``
field, so the hot loop runs on bit tests instead of enum hashing and
property dispatch:

====== ==========================================================
bits   meaning
====== ==========================================================
0      LOAD
1      STORE
2      memory operation (load/store/prefetch)
3      control operation (branch/jump/call/ret)
4      load-like (load/prefetch — issues through the data cache)
5      NOP (bypasses the issue queue)
6      statically ACE (``ace.is_ace and not wrong_path``)
7-9    functional-unit pool index (``FUType.value - 1``)
10+    execution latency under the active :class:`MachineConfig`
====== ==========================================================

Bit 6 is the only per-*instruction* bit; the rest depend only on the
operation class and the machine config, so they are built once per run
by :func:`op_meta_table`.  Dynamic ACE-ness is ``(meta & ACE_BIT) and not
instr.squashed`` — exactly ``DynInstr.is_ace``, since the static bit
already folds in ``wrong_path``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.isa.instruction import AceClass, DynInstr
from repro.isa.opcodes import (
    OpClass,
    execution_latency,
    fu_type_for,
    is_control_op,
    is_memory_op,
)

LOAD_BIT = 1 << 0
STORE_BIT = 1 << 1
MEM_BIT = 1 << 2
CTRL_BIT = 1 << 3
LOADLIKE_BIT = 1 << 4
NOP_BIT = 1 << 5
ACE_BIT = 1 << 6
FU_SHIFT = 7
FU_MASK = 0x7
LAT_SHIFT = 10


def op_meta_table(config) -> List[int]:
    """Packed metadata per operation class, indexed by ``OpClass.value``."""
    table = [0] * (max(op.value for op in OpClass) + 1)
    for op in OpClass:
        meta = 0
        if op is OpClass.LOAD:
            meta |= LOAD_BIT
        if op is OpClass.STORE:
            meta |= STORE_BIT
        if is_memory_op(op):
            meta |= MEM_BIT
        if is_control_op(op):
            meta |= CTRL_BIT
        if op is OpClass.LOAD or op is OpClass.PREFETCH:
            meta |= LOADLIKE_BIT
        if op is OpClass.NOP:
            meta |= NOP_BIT
        meta |= (fu_type_for(op).value - 1) << FU_SHIFT
        meta |= execution_latency(op, config) << LAT_SHIFT
        table[op.value] = meta
    return table


def annotate_trace(instrs: Sequence[DynInstr], table: Sequence[int]) -> None:
    """Stamp packed metadata into ``iq_slot`` for every trace instruction.

    Idempotent — traces shared across sessions (campaigns reuse one trace
    for hundreds of runs) may be annotated repeatedly.  The pipeline's
    ``_reset_pipeline_state`` deliberately leaves ``iq_slot`` alone, so the
    stamp survives squash-and-refetch.
    """
    ace = AceClass.ACE
    for instr in instrs:
        meta = table[instr.op.value]
        if instr.ace is ace and not instr.wrong_path:
            meta |= ACE_BIT
        instr.iq_slot = meta
