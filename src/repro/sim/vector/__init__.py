"""Numpy-accelerated cycle-kernel backend (``--backend vector``).

The package provides :class:`VectorCore`, a drop-in replacement for
:class:`repro.pipeline.core.SMTCore` selected through
:mod:`repro.sim.backends`.  It produces byte-identical results to the
reference Python kernel; see ``docs/simulator-internals.md`` for the
backend seam and what is (and is not) vectorized.
"""

from repro.sim.vector.core import VectorCore
from repro.sim.vector.ledger import BatchResidencyProbe
from repro.sim.vector.tables import op_meta_table

__all__ = ["VectorCore", "BatchResidencyProbe", "op_meta_table"]
