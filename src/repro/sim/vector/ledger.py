"""Batched residency accrual for the vector kernel.

The Python kernel's structures call the :class:`AvfEngine` once per closed
residency interval — a method call, two dict probes and a float add for
every IQ/ROB/LSQ deallocation and every register lifetime, plus one call
per busy functional unit per cycle.  The vector kernel instead buffers
events in flat lists and reduces them with ``numpy`` at the end of the run
(and once at the warmup reset).

The reduction is *exactly* equal to the per-event path, not just close:

* Occupancy events carry integer cycle stamps, so each duration is an
  exact float64 integer.  ``np.bincount`` sums float64 weights
  sequentially in C; partial sums stay integer-valued far below 2**53,
  so every partial — and the final per-(thread, ace) total folded into
  the account — is exact, independent of event order.
* Functional-unit busy cycles are counted in plain ints and folded in
  with one ``account.add`` per (thread, ace) bucket, reproducing the
  per-cycle path's ``has_direct_adds`` marking.
* Register lifetimes are reduced with the same three-segment split as
  :func:`repro.instrument.recorder.reg_lifetime_segments`, vectorized:
  every segment duration is an exact integer clip, so the per-thread
  sums match a verbatim replay bit for bit.

Window clipping uses each account's ``window_start`` at flush time, which
matches the live path because the kernel flushes (and discards) the buffer
at the measurement-window reset: every event still buffered at final flush
closed after the reset, and only intervals *straddling* the reset need the
clip — exactly what ``np.maximum(starts, window_start)`` applies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.avf.engine import AvfEngine
from repro.errors import StructureError
from repro.instrument.structures import Structure


class BatchResidencyProbe:
    """A :class:`ResidencyProbe` that buffers events for one numpy flush."""

    __slots__ = ("engine", "occupancy", "reg_events", "fu_ace", "fu_unace")

    def __init__(self, engine: AvfEngine, num_threads: int) -> None:
        self.engine = engine
        self.occupancy: Dict[Structure, List[Tuple[int, int, int, bool]]] = {}
        self.reg_events: List[Tuple[int, int, int, int, int, bool]] = []
        self.fu_ace = [0] * num_threads
        self.fu_unace = [0] * num_threads

    # -- ResidencyProbe protocol -----------------------------------------------

    def occupy(self, structure: Structure, thread_id: int, start: int,
               end: int, ace: bool) -> None:
        buf = self.occupancy.get(structure)
        if buf is None:
            buf = self.occupancy[structure] = []
        buf.append((thread_id, start, end, ace))

    def fu_busy_cycle(self, thread_id: int, ace: bool, cycle: int = -1) -> None:
        if ace:
            self.fu_ace[thread_id] += 1
        else:
            self.fu_unace[thread_id] += 1

    def reg_lifetime(self, thread_id: int, alloc: int, written: int,
                     last_read: int, freed: int, ace: bool) -> None:
        self.reg_events.append((thread_id, alloc, written, last_read, freed, ace))

    # -- lifecycle --------------------------------------------------------------

    def clear(self) -> None:
        """Drop buffered events (measurement-window reset).

        Clears buffers and counters *in place* — the kernel holds direct
        references to these lists across the reset.
        """
        for buf in self.occupancy.values():
            buf.clear()
        self.reg_events.clear()
        for counters in (self.fu_ace, self.fu_unace):
            for tid in range(len(counters)):
                counters[tid] = 0

    def flush(self) -> None:
        """Reduce every buffered event into the engine's accounts."""
        engine = self.engine
        for structure, events in self.occupancy.items():
            if events:
                self._flush_structure(structure, events)
                events.clear()

        fu_account = engine.account(Structure.FU)
        for counters, ace in ((self.fu_ace, True), (self.fu_unace, False)):
            for tid, busy in enumerate(counters):
                if busy:
                    fu_account.add(tid, float(busy), ace)
                    counters[tid] = 0

        if self.reg_events:
            self._flush_registers()
            self.reg_events.clear()

    # -- reduction --------------------------------------------------------------

    def _flush_structure(self, structure: Structure, events) -> None:
        engine = self.engine
        arr = np.asarray(events, dtype=np.int64)
        tids = arr[:, 0]
        starts = arr[:, 1]
        ends = arr[:, 2]
        aces = arr[:, 3]
        shared = engine._shared.get(structure)
        if shared is not None:
            self._accrue_bulk(shared, tids, starts, ends, aces)
            return
        accounts = engine._private[structure]
        bad = ends < starts
        if bad.any():
            i = int(np.argmax(bad))
            raise StructureError(
                f"{accounts[int(tids[i])].name}: reversed residency interval "
                f"[{int(starts[i])}, {int(ends[i])}) for thread {int(tids[i])}")
        # Private accounts reset in lockstep (engine.reset walks them all),
        # so one combined bincount can feed every per-thread ledger; fall
        # back to per-account reduction if the windows ever diverge.
        window = accounts[0].window_start
        if any(acc.window_start != window for acc in accounts.values()):
            for tid, account in accounts.items():
                mask = tids == tid
                if mask.any():
                    self._accrue_bulk(account, tids[mask], starts[mask],
                                      ends[mask], aces[mask])
            return
        durations = np.maximum(
            ends - np.maximum(starts, window), 0).astype(np.float64)
        sums = np.bincount(tids * 2 + aces, weights=durations)
        for key in np.nonzero(sums)[0]:
            tid, ace = divmod(int(key), 2)
            accounts[tid]._accrue(tid, float(sums[key]), bool(ace))

    def _flush_registers(self) -> None:
        """Reduce buffered register lifetimes into the REG ledger.

        Mirrors :func:`repro.instrument.recorder.reg_lifetime_segments`
        element-wise: ``[alloc, written)`` un-ACE, ``[written, last_read)``
        ACE when the value had ACE consumers, the remainder until ``freed``
        un-ACE; a register squashed before writing (``written < 0``) is
        un-ACE throughout.
        """
        account = self.engine._shared[Structure.REG]
        arr = np.asarray(self.reg_events, dtype=np.int64)
        tids = arr[:, 0]
        alloc = arr[:, 1]
        written = arr[:, 2]
        last_read = arr[:, 3]
        freed = arr[:, 4]
        aces = arr[:, 5]
        squashed = written < 0
        has_ace = (aces != 0) & (last_read > written) & ~squashed
        w_clip = np.minimum(written, freed)
        ace_end = np.minimum(last_read, freed)
        # First un-ACE segment ends at freed for squashed registers (their
        # whole lifetime), else at the (clipped) write cycle; the trailing
        # un-ACE segment starts where the ACE segment ends (or at the write
        # for never-read values) and is empty for squashed registers.
        u1_end = np.where(squashed, freed, w_clip)
        u2_start = np.where(squashed, freed, np.where(has_ace, ace_end, w_clip))
        if (u1_end < alloc).any() or (has_ace & (ace_end < written)).any() \
                or (freed < u2_start).any():
            # Degenerate lifetime: replay per event so the error carries
            # the exact offending segment.
            for event in self.reg_events:
                self.engine.reg_lifetime(*event)
            return
        window = account.window_start
        unace = (np.maximum(u1_end - np.maximum(alloc, window), 0)
                 + np.maximum(freed - np.maximum(u2_start, window), 0))
        ace = np.where(
            has_ace, np.maximum(ace_end - np.maximum(written, window), 0), 0)
        unace_sums = np.bincount(tids, weights=unace.astype(np.float64))
        ace_sums = np.bincount(tids, weights=ace.astype(np.float64))
        for tid in np.nonzero(unace_sums)[0]:
            account._accrue(int(tid), float(unace_sums[tid]), False)
        for tid in np.nonzero(ace_sums)[0]:
            account._accrue(int(tid), float(ace_sums[tid]), True)

    @staticmethod
    def _accrue_bulk(account, tids, starts, ends, aces) -> None:
        bad = ends < starts
        if bad.any():
            i = int(np.argmax(bad))
            raise StructureError(
                f"{account.name}: reversed residency interval "
                f"[{int(starts[i])}, {int(ends[i])}) for thread {int(tids[i])}")
        durations = np.maximum(
            ends - np.maximum(starts, account.window_start),
            0).astype(np.float64)
        # One bucket per (thread, ace); thread ids here are always >= 0
        # (occupancy events carry a real context id by construction).
        sums = np.bincount(tids * 2 + aces, weights=durations)
        for key in np.nonzero(sums)[0]:
            tid, ace = divmod(int(key), 2)
            account._accrue(tid, float(sums[key]), bool(ace))
