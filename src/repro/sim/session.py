"""Unified simulation session: one owner for trace building, observer
wiring, core construction and result packaging.

Every harness that runs the cycle kernel — :func:`repro.sim.simulate`, the
fault-injection campaign and the RMT harness — goes through
:class:`SimSession`, so the wiring of the probe bus (ledger, interval
recorder, phase tracker, auditor, trace writer) exists in exactly one
place.  The kernel itself (:class:`repro.pipeline.core.SMTCore`) only ever
sees the narrow :class:`repro.instrument.Instrumentation` container this
session assembles.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.audit.auditor import SimAuditor
from repro.audit.observe import TraceWriter
from repro.avf.engine import AvfEngine
from repro.avf.phases import PhaseTracker
from repro.config import DEFAULT_CONFIG, MachineConfig, SimConfig
from repro.errors import SimulationError, WorkloadError
from repro.fetch.base import FetchPolicy
from repro.fetch.registry import create_policy
from repro.instrument import IntervalRecorder, ProbeBus
from repro.isa.opcodes import OpClass
from repro.pipeline.core import SMTCore
from repro.sim.backends import core_class, resolve_backend
from repro.sim.results import SimResult, ThreadResult
from repro.workload.address_stream import is_non_temporal
from repro.workload.generator import ThreadTrace, generate_trace
from repro.workload.mixes import WorkloadMix
from repro.workload.spec2000 import get_profile

WorkloadSpec = Union[WorkloadMix, Sequence[str]]


def _program_names(workload: WorkloadSpec) -> List[str]:
    if isinstance(workload, WorkloadMix):
        return list(workload.programs)
    names = list(workload)
    if not names:
        raise WorkloadError("workload must contain at least one program")
    return names


def build_traces(workload: WorkloadSpec, sim: SimConfig) -> List[ThreadTrace]:
    """Materialise one correct-path trace per context.

    Each thread's trace is as long as the whole run's instruction budget —
    a safe upper bound, since no single thread can commit more than the
    total budget.
    """
    names = _program_names(workload)
    length = sim.max_instructions + sim.warmup_instructions
    return [
        generate_trace(get_profile(name), tid, length, seed=sim.seed)
        for tid, name in enumerate(names)
    ]


class SimSession:
    """One simulation run, end to end.

    The session validates the workload, builds (or adopts) traces, wires
    every observer onto a :class:`~repro.instrument.ProbeBus`, constructs
    the core, and packages the result.  Observers subscribe in a fixed
    order — ledger, interval recorder, phase tracker, auditor, trace
    writer — so fan-out effects are deterministic.

    Attributes of interest after construction: ``core``, ``engine`` (the
    AVF ledger), ``recorder`` (interval recorder, or None), ``auditor``,
    ``phase_tracker``, ``names``, ``traces``, ``policy``, ``bus``.
    """

    def __init__(self, workload: WorkloadSpec,
                 policy: Union[str, FetchPolicy] = "ICOUNT",
                 config: Optional[MachineConfig] = None,
                 sim: Optional[SimConfig] = None,
                 traces: Optional[List[ThreadTrace]] = None,
                 trace_out: Optional[str] = None,
                 observers: Sequence[object] = (),
                 taint: bool = False,
                 backend: Optional[str] = None) -> None:
        self.config = config or DEFAULT_CONFIG
        self.backend = resolve_backend(backend)
        self.sim = sim or SimConfig()
        self.workload = workload
        self.names = _program_names(workload)
        if traces is None:
            traces = build_traces(workload, self.sim)
        if len(traces) != len(self.names):
            raise WorkloadError("trace count does not match workload size")
        self.traces = traces
        self.policy = create_policy(policy) if isinstance(policy, str) else policy

        self.bus = ProbeBus()
        self.engine = self.bus.subscribe(
            AvfEngine(self.config, len(traces)))
        self.recorder = None
        if self.sim.record_intervals:
            self.recorder = self.bus.subscribe(IntervalRecorder())
        self.phase_tracker = None
        if self.sim.phase_window_cycles > 0:
            self.phase_tracker = self.bus.subscribe(
                PhaseTracker(self.engine, self.sim.phase_window_cycles))
        self.auditor = None
        writer = TraceWriter(trace_out) if trace_out is not None else None
        if self.sim.check_invariants > 0 or writer is not None:
            self.auditor = self.bus.subscribe(
                SimAuditor(check_every=self.sim.check_invariants,
                           trace_writer=writer))
        if writer is not None:
            self.bus.subscribe(writer)
        # Extra observers (live fault injection's digest recorder, watchdog
        # and strike hook) subscribe after the standard set; none of them
        # implements the residency protocol, so the single-subscriber fast
        # path — the ledger called directly — is preserved.
        for observer in observers:
            self.bus.subscribe(observer)

        # Backend seam: both kernels take the same constructor arguments
        # and produce byte-identical results (see repro.sim.backends).
        self.core = core_class(self.backend)(
            traces, self.config, self.policy, self.sim,
            self.bus.attach(ledger=self.engine,
                            recorder=self.recorder,
                            taint=taint))

    def run(self) -> SimResult:
        """Optionally warm functionally, run the core, package the result."""
        if self.sim.functional_warmup:
            functional_warmup(self.core, self.traces)
        cycles = self.core.run()
        return self.package(cycles)

    def package(self, cycles: int) -> SimResult:
        return package_result(self.core, self.workload, self.names,
                              self.policy, cycles, auditor=self.auditor,
                              phase_tracker=self.phase_tracker)


def build_core(traces: List[ThreadTrace], config: MachineConfig,
               policy: FetchPolicy, sim: SimConfig,
               trace_out: Optional[str] = None) -> SMTCore:
    """Construct a standalone core with standard observer wiring.

    For tests and tools that drive a core directly from pre-built traces;
    production entry points go through :class:`SimSession`.
    """
    bus = ProbeBus()
    engine = bus.subscribe(AvfEngine(config, len(traces)))
    recorder = None
    if sim.record_intervals:
        recorder = bus.subscribe(IntervalRecorder())
    if sim.phase_window_cycles > 0:
        bus.subscribe(PhaseTracker(engine, sim.phase_window_cycles))
    writer = TraceWriter(trace_out) if trace_out is not None else None
    if sim.check_invariants > 0 or writer is not None:
        bus.subscribe(SimAuditor(check_every=sim.check_invariants,
                                 trace_writer=writer))
    if writer is not None:
        bus.subscribe(writer)
    return SMTCore(traces, config, policy, sim,
                   bus.attach(ledger=engine, recorder=recorder))


def functional_warmup(core: SMTCore, traces: List[ThreadTrace]) -> None:
    """Warm caches, TLBs and branch predictors with the traces' own footprint.

    Content-only: all accesses happen at cycle 0, so no residency interval
    has positive length and the AVF ledgers stay untouched; lines that remain
    resident simply enter measurement already warm — the role SimPoint
    fast-forwarding plays in the paper.

    Only the region each thread will actually execute is walked (the shared
    budget split per thread, with slack): traces are budget-length as an
    upper bound, and warming their far future would evict the near future
    that the measured window really touches.
    """
    per_thread_budget = core.sim.max_instructions * 3 // (2 * len(traces)) + 64
    for trace in traces:
        tid = trace.thread_id
        unit = core.threads[tid].branch_unit
        last_line = -1
        # Caches/TLBs: walk only the region this thread will execute —
        # warming its far future would evict the near future it touches.
        for instr in trace.instrs[:per_thread_budget]:
            line = core.mem.il1.line_address(instr.pc)
            if line != last_line:
                core.mem.fetch_access(instr.pc, 0, tid)
                last_line = line
            if instr.is_memory and not is_non_temporal(instr.mem_addr):
                core.mem.data_access(instr.mem_addr, 0, tid, instr.is_store)
        # Predictors: train over the whole trace.  A long-running program's
        # branch tables are at steady state; the tables are tiny (2-bit
        # counters), so this reaches saturation, not memorisation.
        for instr in trace.instrs:
            if instr.op is OpClass.BRANCH:
                taken, checkpoint = unit.gshare.predict(instr.pc)
                unit.gshare.resolve(instr.pc, instr.taken, taken, checkpoint)
            if instr.is_control and instr.taken:
                unit.btb.update(instr.pc, instr.target)
        # Reset counters so measured statistics exclude the warmup pass.
        unit.gshare.lookups = unit.gshare.correct = 0
    core.mem.reset_statistics()


def package_result(core: SMTCore, workload: WorkloadSpec, names: List[str],
                   policy: FetchPolicy, cycles: int,
                   auditor: Optional[SimAuditor] = None,
                   phase_tracker: Optional[PhaseTracker] = None) -> SimResult:
    """Assemble a :class:`SimResult` from a finished core."""
    if cycles <= 0:
        raise SimulationError(
            f"simulation finished after {cycles} cycles; a degenerate run "
            "has no IPC (did the instruction budget round down to zero?)")
    if auditor is None or phase_tracker is None:
        # Callers holding only the core (legacy ``_package`` signature):
        # recover the observers from the bus the core was wired with.
        bus = getattr(core.instruments, "bus", None)
        if bus is not None:
            for sub in bus.subscribers:
                if auditor is None and isinstance(sub, SimAuditor):
                    auditor = sub
                if phase_tracker is None and isinstance(sub, PhaseTracker):
                    phase_tracker = sub
    threads = []
    for t in core.threads:
        committed = core.committed_in_window(t.id)
        threads.append(ThreadResult(
            thread_id=t.id,
            program=names[t.id],
            committed=committed,
            ipc=committed / cycles,
            fetched=t.fetched,
            wrong_path_fetched=t.wrong_path_fetched,
            branch_mispredict_rate=t.branch_unit.misprediction_rate,
        ))
    committed_total = sum(t.committed for t in threads)
    workload_name = (workload.name if isinstance(workload, WorkloadMix)
                     else "+".join(names))
    avf_report = core.engine.report(cycles)
    audit = None
    if auditor is not None:
        auditor.audit_final_report(avf_report)
        audit = auditor.summary_payload()
    return SimResult(
        workload=workload_name,
        policy=policy.name,
        num_threads=core.num_threads,
        cycles=cycles,
        committed=committed_total,
        ipc=committed_total / cycles,
        threads=threads,
        avf=avf_report,
        dl1_miss_rate=core.mem.dl1.miss_rate,
        l2_miss_rate=core.mem.l2.miss_rate,
        il1_miss_rate=core.mem.il1.miss_rate,
        dtlb_miss_rate=core.mem.dtlb.miss_rate,
        mispredict_squashes=core.mispredict_squashes,
        phase_series=(phase_tracker.series
                      if phase_tracker is not None else None),
        audit=audit,
    )
