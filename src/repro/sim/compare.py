"""Design-point comparison: diff two simulation results.

The questions this library exists for are comparative — does FLUSH beat
ICOUNT here, what did doubling the IQ cost, is this machine safer for that
workload — so give the comparison a first-class representation: per-
structure AVF deltas, the IPC movement, and the reliability-efficiency
ratio that decides the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.avf.structures import FIGURE1_ORDER, Structure
from repro.errors import ReproError
from repro.metrics.reliability import reliability_efficiency
from repro.sim.results import SimResult


@dataclass(frozen=True)
class StructureDelta:
    """One structure's movement between two design points."""

    structure: Structure
    baseline_avf: float
    candidate_avf: float

    @property
    def absolute(self) -> float:
        return self.candidate_avf - self.baseline_avf

    @property
    def relative(self) -> float:
        if self.baseline_avf == 0:
            return float("inf") if self.candidate_avf > 0 else 0.0
        return self.candidate_avf / self.baseline_avf - 1.0


@dataclass
class ResultComparison:
    """Candidate vs baseline: who wins what."""

    baseline: SimResult
    candidate: SimResult
    deltas: Dict[Structure, StructureDelta] = field(default_factory=dict)

    @property
    def ipc_gain(self) -> float:
        if self.baseline.ipc <= 0:
            raise ReproError("baseline IPC must be positive")
        return self.candidate.ipc / self.baseline.ipc - 1.0

    def efficiency_ratio(self, structure: Structure) -> float:
        """(candidate IPC/AVF) / (baseline IPC/AVF); >1 = candidate wins."""
        base = reliability_efficiency(self.baseline.ipc,
                                      self.baseline.avf.avf[structure])
        cand = reliability_efficiency(self.candidate.ipc,
                                      self.candidate.avf.avf[structure])
        if base == float("inf"):
            return 1.0 if cand == float("inf") else 0.0
        if cand == float("inf"):
            return float("inf")
        return cand / base

    def improved(self, structure: Structure) -> bool:
        """True when the candidate's trade-off beats the baseline's here."""
        return self.efficiency_ratio(structure) > 1.0

    def summary(self) -> str:
        lines = [
            f"{self.candidate.workload} [{self.candidate.policy}] vs "
            f"[{self.baseline.policy}]: IPC {self.baseline.ipc:.3f} -> "
            f"{self.candidate.ipc:.3f} ({self.ipc_gain:+.1%})",
            f"{'structure':<10} {'base AVF':>9} {'cand AVF':>9} "
            f"{'ΔAVF':>8} {'eff ratio':>10}",
        ]
        for s in FIGURE1_ORDER:
            if s not in self.deltas:
                continue
            d = self.deltas[s]
            lines.append(
                f"{s.value:<10} {d.baseline_avf:9.4f} {d.candidate_avf:9.4f} "
                f"{d.absolute:+8.4f} {self.efficiency_ratio(s):10.3f}"
            )
        return "\n".join(lines)


def compare_results(baseline: SimResult, candidate: SimResult) -> ResultComparison:
    """Build the per-structure diff between two simulation results."""
    if baseline.workload != candidate.workload:
        raise ReproError(
            f"comparing different workloads: {baseline.workload!r} vs "
            f"{candidate.workload!r}")
    comparison = ResultComparison(baseline=baseline, candidate=candidate)
    for s in Structure:
        comparison.deltas[s] = StructureDelta(
            structure=s,
            baseline_avf=baseline.avf.avf[s],
            candidate_avf=candidate.avf.avf[s],
        )
    return comparison
