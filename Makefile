# Convenience targets for the repro SMT-AVF reproduction.

PYTHON ?= python

.PHONY: install test test-chaos bench bench-kernel bench-kernel-check \
	reproduce reproduce-smoke inject-smoke frontier-smoke serve-smoke \
	serve-recovery-smoke fleet-smoke test-service test-fleet examples clean

SMOKE_DIR ?= .smoke

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# The fault-tolerance group: supervisor + chaos harness + resilient CLI.
test-chaos:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_resilience.py \
		"tests/test_cli.py::TestResilientCli"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Cycle-kernel micro-benchmark with machine-readable output.  Minimums are
# what the regression check reads, so force enough rounds that each
# benchmark reliably touches its floor despite scheduler noise.
bench-kernel:
	mkdir -p benchmarks/out
	PYTHONPATH=src PYTHONHASHSEED=0 $(PYTHON) -m pytest \
		benchmarks/test_sim_kernel.py --benchmark-only \
		--benchmark-min-rounds=7 \
		--benchmark-json=benchmarks/out/kernel.json

# Guard against kernel slowdowns: compare fresh runs to the committed
# baseline, normalising out machine speed via the trace-generation
# benchmark (which exercises no simulator code).  Two candidate runs are
# taken and the checker keeps the per-benchmark best, so a one-off
# scheduler spike in either run cannot fail the gate while a sustained
# regression still does.  The --max-ratio clause additionally holds the
# vector backend to a fraction of the committed Python-kernel baseline.
bench-kernel-check: bench-kernel
	PYTHONPATH=src PYTHONHASHSEED=0 $(PYTHON) -m pytest \
		benchmarks/test_sim_kernel.py --benchmark-only \
		--benchmark-min-rounds=7 \
		--benchmark-json=benchmarks/out/kernel-rerun.json
	$(PYTHON) tools/check_bench_regression.py BENCH_kernel.json \
		benchmarks/out/kernel.json benchmarks/out/kernel-rerun.json \
		--threshold 0.15 \
		--control test_trace_generation_throughput \
		--max-ratio \
		'test_kernel_cycle_throughput[vector]/test_kernel_cycle_throughput[python]=0.2'

reproduce:
	$(PYTHON) -m repro.cli reproduce --out reproduction

# Parallel-runner + result-cache smoke test with runtime auditing: every
# simulation checks its conservation invariants every 64 cycles, the second
# run must simulate nothing (served from the warm cache) and render
# byte-identical output.
reproduce-smoke:
	rm -rf $(SMOKE_DIR)
	PYTHONPATH=src $(PYTHON) -m repro.cli reproduce --only fig1_avf_profile \
		--scale 300 --jobs 2 --check-invariants=64 \
		--cache-dir $(SMOKE_DIR)/cache --out $(SMOKE_DIR)/run1
	PYTHONPATH=src $(PYTHON) -m repro.cli reproduce --only fig1_avf_profile \
		--scale 300 --jobs 2 --check-invariants=64 \
		--cache-dir $(SMOKE_DIR)/cache --out $(SMOKE_DIR)/run2 \
		| tee $(SMOKE_DIR)/second.log
	grep -q "simulated 0 runs" $(SMOKE_DIR)/second.log
	cmp $(SMOKE_DIR)/run1/fig1_avf_profile.txt $(SMOKE_DIR)/run2/fig1_avf_profile.txt
	rm -rf $(SMOKE_DIR)

# Live fault-injection smoke test: a tiny campaign plus one forced hang,
# one forced crash and one forced parity detection.  Exit 0 proves the
# watchdog catches a wedged pipeline and the containment turns a corrupted
# simulator into a classified DUE instead of a campaign abort.
inject-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli inject gcc mcf --live \
		--strikes 6 --structures iq rob \
		--force hang --force crash --force due --seed 11

# Protection-frontier smoke test: regenerate the protection_frontier
# artefact at the committed golden's scale and diff it against the
# fixture — the full lattice enumeration, the Pareto filter, and the
# live multi-bit cross-validation (Wilson interval containing the
# analytic SDC rate) all have to reproduce byte-identically.
frontier-smoke:
	rm -rf $(SMOKE_DIR)/frontier
	PYTHONPATH=src REPRO_SCALE=500 $(PYTHON) -m repro.cli reproduce \
		--only protection_frontier --scale 500 \
		--out $(SMOKE_DIR)/frontier
	cmp tests/golden/protection_frontier.txt \
		$(SMOKE_DIR)/frontier/protection_frontier.txt
	grep -q "validation passed" $(SMOKE_DIR)/frontier/protection_frontier.txt
	rm -rf $(SMOKE_DIR)/frontier

# Campaign-service smoke test: boots the real server on an ephemeral
# port, submits the same spec from two concurrent clients, and asserts
# exactly one computation ran and both clients read byte-identical
# result artifacts.
serve-smoke:
	PYTHONPATH=src $(PYTHON) tools/serve_smoke.py

# Crash-recovery drill: SIGKILL the real `repro-sim serve` process
# after 2 committed batches, restart it on the same state dir, and
# assert the journal replay resumed the campaign from the batch cache
# with a byte-identical final artifact.
serve-recovery-smoke:
	PYTHONPATH=src $(PYTHON) tools/serve_smoke.py --kill-after 2

# Fleet chaos drill: a real server, three real worker shards (one
# SIGKILLed mid-batch, one behind partition chaos), and a byte-identity
# assert against a clean fleet-less run of the identical spec.
fleet-smoke:
	PYTHONPATH=src $(PYTHON) tools/fleet_smoke.py

# The service contract suite: golden response schemas, concurrency
# dedup, admission control, cancellation, chaos isolation between
# campaigns — plus the journal/recovery suite.
test-service:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_service_contract.py \
		tests/test_service_recovery.py

# The fleet suite: lease ledger, wire codec, exactly-once/fencing
# acceptance scenarios, and the per-network-mode chaos differentials.
test-fleet:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_fleet.py

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
