# Convenience targets for the repro SMT-AVF reproduction.

PYTHON ?= python

.PHONY: install test bench reproduce examples clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

reproduce:
	$(PYTHON) -m repro.cli reproduce --out reproduction

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
