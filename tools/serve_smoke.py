"""Campaign-service smoke test: boot, dedup under concurrency, shut down.

Boots the real server (ephemeral port, in-process), submits the same
spec from two concurrent clients, and asserts the service's core
promises end to end:

* exactly one computation runs (`executions == 1`);
* both clients read byte-identical result artifacts;
* the `submit`-style status stream reaches `done` with full batches.

Exit 0 on success; any broken promise raises.  Run via ``make
serve-smoke`` or the CI ``service`` job.
"""

import asyncio
import json
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service.server import CampaignServer  # noqa: E402
from repro.service.store import ArtifactStore  # noqa: E402

SPEC = {"kind": "live", "workload": ["gcc"], "strikes": 6,
        "instructions": 120, "structures": ["iq", "rob"]}


def request(port, method, path, body=None, timeout=240.0):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        data = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=data)
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    return response.status, raw


def main():
    root = tempfile.mkdtemp(prefix="serve-smoke-")
    server = CampaignServer(ArtifactStore(root), workers=2)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(15), "server failed to start"
    port = server.port
    print(f"server up on 127.0.0.1:{port} (store: {root})")

    status, raw = request(port, "GET", "/healthz")
    assert status == 200, (status, raw)

    barrier = threading.Barrier(2)
    outcomes = []

    def submit():
        barrier.wait()
        outcomes.append(request(port, "POST", "/campaigns", body=SPEC))

    clients = [threading.Thread(target=submit) for _ in range(2)]
    for c in clients:
        c.start()
    for c in clients:
        c.join(60)
    assert len(outcomes) == 2, "a submission never returned"
    codes = sorted(code for code, _ in outcomes)
    assert codes == [200, 201], f"expected one create + one dedup: {codes}"
    ids = {json.loads(raw)["id"] for _, raw in outcomes}
    assert len(ids) == 1, f"identical specs got different ids: {ids}"
    (cid,) = ids
    print(f"two concurrent submissions coalesced into campaign {cid}")

    status, raw = request(port, "GET", f"/campaigns/{cid}?wait=180")
    payload = json.loads(raw)
    assert status == 200 and payload["state"] == "done", payload
    batches = payload["batches"]
    assert batches["done"] == batches["total"] > 0, batches
    for entry in payload["progress"]:
        assert (entry["wilson_low"] <= entry["sdc_rate"]
                <= entry["wilson_high"]), entry
    print(f"campaign done: {batches['done']}/{batches['total']} batches, "
          f"{len(payload['progress'])} structures with Wilson intervals")

    status, first = request(port, "GET", f"/campaigns/{cid}/result")
    assert status == 200, status
    status, second = request(port, "GET", f"/campaigns/{cid}/result")
    assert first == second and len(first) > 2, "result bytes must be stable"

    status, raw = request(port, "GET", "/stats")
    stats = json.loads(raw)
    assert stats["executions"] == 1, stats
    print(f"exactly one execution for two clients; "
          f"result artifact {len(first)} bytes, byte-identical reads")

    asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)
    print("serve-smoke OK")


if __name__ == "__main__":
    main()
