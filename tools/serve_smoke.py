"""Campaign-service smoke tests: dedup under concurrency, crash recovery.

Two modes:

* default — boots the real server (ephemeral port, in-process), submits
  the same spec from two concurrent clients, and asserts the service's
  core promises end to end:

  - exactly one computation runs (``executions == 1``);
  - both clients read byte-identical result artifacts;
  - the ``submit``-style status stream reaches ``done`` with full
    batches.

* ``--kill-after N`` — the durability drill the CI ``service-recovery``
  job runs: boots ``repro-sim serve`` as a real subprocess with chaos
  slowing every batch, SIGKILLs it once ``N`` batches have committed,
  restarts it on the same state dir, and asserts the journal replay
  re-admitted the campaign, the committed batches were served from the
  cache (not recomputed), and the final artifact is byte-identical to
  an uninterrupted baseline.

Exit 0 on success; any broken promise raises.  Run via ``make
serve-smoke`` / ``make serve-recovery-smoke`` or the CI ``service`` and
``service-recovery`` jobs.
"""

import argparse
import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.resilience.chaos import CHAOS_ENV_VAR  # noqa: E402
from repro.service.scheduler import CampaignScheduler  # noqa: E402
from repro.service.server import CampaignServer  # noqa: E402
from repro.service.store import ArtifactStore  # noqa: E402

SPEC = {"kind": "live", "workload": ["gcc"], "strikes": 6,
        "instructions": 120, "structures": ["iq", "rob"]}

#: The recovery drill's campaign: 24 batches so a SIGKILL always lands
#: mid-flight, deterministic so the resumed artifact can be compared
#: byte for byte against an uninterrupted run.
RECOVERY_SPEC = {"kind": "live", "workload": ["gcc"], "strikes": 48,
                 "instructions": 80, "structures": ["iq"],
                 "strike_batch": 2}

#: Slows each batch of the first server life by a second, guaranteeing
#: the kill arrives while most batches are still outstanding.
RECOVERY_CHAOS = "hang:live/gcc:*:1.0"


def request(port, method, path, body=None, timeout=240.0):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        data = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=data)
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    return response.status, raw


def dedup_smoke():
    root = tempfile.mkdtemp(prefix="serve-smoke-")
    server = CampaignServer(ArtifactStore(root), workers=2)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(15), "server failed to start"
    port = server.port
    print(f"server up on 127.0.0.1:{port} (store: {root})")

    status, raw = request(port, "GET", "/healthz")
    assert status == 200, (status, raw)

    barrier = threading.Barrier(2)
    outcomes = []

    def submit():
        barrier.wait()
        outcomes.append(request(port, "POST", "/campaigns", body=SPEC))

    clients = [threading.Thread(target=submit) for _ in range(2)]
    for c in clients:
        c.start()
    for c in clients:
        c.join(60)
    assert len(outcomes) == 2, "a submission never returned"
    codes = sorted(code for code, _ in outcomes)
    assert codes == [200, 201], f"expected one create + one dedup: {codes}"
    ids = {json.loads(raw)["id"] for _, raw in outcomes}
    assert len(ids) == 1, f"identical specs got different ids: {ids}"
    (cid,) = ids
    print(f"two concurrent submissions coalesced into campaign {cid}")

    status, raw = request(port, "GET", f"/campaigns/{cid}?wait=180")
    payload = json.loads(raw)
    assert status == 200 and payload["state"] == "done", payload
    batches = payload["batches"]
    assert batches["done"] == batches["total"] > 0, batches
    for entry in payload["progress"]:
        assert (entry["wilson_low"] <= entry["sdc_rate"]
                <= entry["wilson_high"]), entry
    print(f"campaign done: {batches['done']}/{batches['total']} batches, "
          f"{len(payload['progress'])} structures with Wilson intervals")

    status, first = request(port, "GET", f"/campaigns/{cid}/result")
    assert status == 200, status
    status, second = request(port, "GET", f"/campaigns/{cid}/result")
    assert first == second and len(first) > 2, "result bytes must be stable"

    status, raw = request(port, "GET", "/stats")
    stats = json.loads(raw)
    assert stats["executions"] == 1, stats
    print(f"exactly one execution for two clients; "
          f"result artifact {len(first)} bytes, byte-identical reads")

    asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)
    print("serve-smoke OK")


def spawn_serve(state_dir, chaos=None):
    """Start ``repro-sim serve`` on an ephemeral port; return (proc, port)."""
    env = dict(os.environ,
               PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"))
    env.pop(CHAOS_ENV_VAR, None)
    if chaos:
        env[CHAOS_ENV_VAR] = chaos
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--state-dir", str(state_dir), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    box = {}
    ready = threading.Event()

    def pump():
        for line in proc.stdout:
            match = re.search(r"listening on http://[\d.]+:(\d+)", line)
            if match and not ready.is_set():
                box["port"] = int(match.group(1))
                ready.set()

    threading.Thread(target=pump, daemon=True).start()
    if not ready.wait(60):
        proc.kill()
        raise AssertionError("serve never announced its port")
    return proc, box["port"]


def recovery_smoke(kill_after):
    workdir = Path(tempfile.mkdtemp(prefix="serve-recovery-"))

    # Uninterrupted baseline, in-process: the bytes a client must read
    # back no matter how many times the service dies along the way.
    baseline = CampaignScheduler(ArtifactStore(workdir / "baseline"),
                                 workers=2)
    status, _ = baseline.submit(RECOVERY_SPEC)
    cid = status["id"]
    final = baseline.wait(cid, timeout=300)
    assert final["state"] == "done", final
    baseline_bytes = baseline.result_bytes(cid)
    print(f"baseline campaign {cid}: {final['batches']['total']} batches, "
          f"artifact {len(baseline_bytes)} bytes")

    # Life one: chaos-slowed batches, then SIGKILL mid-campaign.
    state = workdir / "state"
    proc, port = spawn_serve(state, chaos=RECOVERY_CHAOS)
    try:
        status, raw = request(port, "POST", "/campaigns",
                              body=RECOVERY_SPEC)
        assert status == 201, (status, raw)
        assert json.loads(raw)["id"] == cid

        deadline = time.monotonic() + 120
        while True:
            _, raw = request(port, "GET", f"/campaigns/{cid}")
            batches = json.loads(raw)["batches"]
            if batches["done"] >= kill_after:
                break
            assert time.monotonic() < deadline, batches
            time.sleep(0.2)
        committed = batches["done"]
        assert committed < batches["total"], batches
        print(f"life one: {committed}/{batches['total']} batches committed "
              f"-> SIGKILL (pid {proc.pid})")
    finally:
        proc.kill()  # SIGKILL: no shutdown hooks, no journal flush
        proc.wait(15)

    # Life two: same state dir, no chaos.  The journal replay re-admits
    # the campaign before the socket binds.
    proc, port = spawn_serve(state)
    try:
        _, raw = request(port, "GET", "/stats")
        stats = json.loads(raw)
        assert stats["recovered"] == 1, stats
        print("life two: journal replay re-admitted 1 campaign")

        status, raw = request(port, "GET", f"/campaigns/{cid}?wait=240")
        final = json.loads(raw)
        assert status == 200 and final["state"] == "done", final
        batches = final["batches"]
        assert batches["done"] == batches["total"], batches
        assert batches["cached"] >= committed, (
            f"only {batches['cached']} batches served from cache; the "
            f"first life committed {committed}")

        status, raw = request(port, "GET", f"/campaigns/{cid}/result")
        assert status == 200, status
        assert raw == baseline_bytes, (
            "recovered artifact differs from the uninterrupted baseline")
        print(f"recovered: {batches['cached']}/{batches['total']} batches "
              f"from cache, artifact byte-identical to baseline")
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(15)
    print("serve-recovery-smoke OK")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kill-after", type=int, default=None, metavar="N",
                        help="run the crash-recovery drill: SIGKILL the "
                             "server after N committed batches, restart, "
                             "verify cached resume + byte-identical result")
    args = parser.parse_args(argv)
    if args.kill_after is not None:
        assert args.kill_after >= 1, "--kill-after must be >= 1"
        recovery_smoke(args.kill_after)
    else:
        dedup_smoke()


if __name__ == "__main__":
    main()
