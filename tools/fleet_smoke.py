"""Fleet chaos smoke: 3 worker shards, one SIGKILL, one partition.

The drill the CI ``fleet-chaos`` job runs, end to end with real
processes:

1. compute the campaign's artifact bytes with a clean, fleet-less
   in-process scheduler — the oracle;
2. boot ``repro-sim serve`` as a subprocess (short lease timeout) and
   connect three ``repro-sim worker`` shards:

   - one that stalls its first leased batch for a minute (network
     ``slow`` chaos) and is then SIGKILLed mid-batch,
   - one behind ``partition`` chaos that drops its first commit and all
     traffic for a 2 s window,
   - one healthy;

3. wait for the campaign to finish and assert:

   - the artifact is **byte-identical** to the clean run's (the fleet
     differential discipline),
   - at least one lease was reclaimed (the SIGKILL and the partition
     actually cost leases),
   - the dead shard's work was redispatched, not lost or duplicated.

Exit 0 on success; any broken promise raises.  Run via ``make
fleet-smoke``.
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.resilience.chaos import CHAOS_ENV_VAR  # noqa: E402
from repro.service.scheduler import CampaignScheduler  # noqa: E402
from repro.service.store import ArtifactStore  # noqa: E402

#: 12 batches across 3 shards, a retry budget wide enough that every
#: chaos-charged lease expiry still leaves headroom.
SPEC = {"kind": "live", "workload": ["gcc"], "strikes": 24,
        "instructions": 80, "structures": ["iq"], "strike_batch": 2,
        "budget": {"retries": 5}}

SRC = Path(__file__).resolve().parent.parent / "src"


def request(port, method, path, body=None, timeout=240.0):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        data = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=data)
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    return response.status, raw


def wait_stats(port, predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while True:
        _, raw = request(port, "GET", "/stats")
        stats = json.loads(raw)
        if predicate(stats):
            return stats
        assert time.monotonic() < deadline, f"timed out on {what}: {stats}"
        time.sleep(0.2)


def spawn(cmd, chaos=None):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    env.pop(CHAOS_ENV_VAR, None)
    if chaos:
        env[CHAOS_ENV_VAR] = chaos
    return subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, env=env)


def spawn_serve(state_dir):
    proc = spawn([sys.executable, "-m", "repro.cli", "serve",
                  "--state-dir", str(state_dir), "--port", "0",
                  "--lease-timeout", "1.5", "--hedge-after", "60"])
    box = {}
    ready = threading.Event()

    def pump():
        for line in proc.stdout:
            match = re.search(r"listening on http://[\d.]+:(\d+)", line)
            if match and not ready.is_set():
                box["port"] = int(match.group(1))
                ready.set()

    threading.Thread(target=pump, daemon=True).start()
    if not ready.wait(60):
        proc.kill()
        raise AssertionError("serve never announced its port")
    return proc, box["port"]


def spawn_worker(port, shard_id, chaos=None):
    return spawn([sys.executable, "-m", "repro.cli", "worker",
                  "--connect", f"127.0.0.1:{port}",
                  "--shard-id", shard_id,
                  "--heartbeat-interval", "0.3",
                  "--poll-wait", "1.0"],
                 chaos=chaos)


def main():
    workdir = Path(tempfile.mkdtemp(prefix="fleet-smoke-"))

    # The oracle: a clean, fleet-less run of the identical spec.
    baseline = CampaignScheduler(ArtifactStore(workdir / "baseline"),
                                 workers=2)
    status, _ = baseline.submit(SPEC)
    cid = status["id"]
    final = baseline.wait(cid, timeout=300)
    assert final["state"] == "done", final
    baseline_bytes = baseline.result_bytes(cid)
    print(f"baseline campaign {cid}: {final['batches']['total']} batches, "
          f"artifact {len(baseline_bytes)} bytes")

    proc, port = spawn_serve(workdir / "state")
    victim = partitioned = healthy = None
    try:
        # The victim stalls its first leased batch for 60 s — the
        # SIGKILL is guaranteed to land mid-batch.
        victim = spawn_worker(port, "victim", chaos="slow:live:1:60")
        partitioned = spawn_worker(port, "partitioned",
                                   chaos="partition:commit:1:2.0")
        healthy = spawn_worker(port, "healthy")
        wait_stats(port,
                   lambda s: s["fleet"]["shards"]["connected"] >= 3,
                   60, "3 shards connecting")
        print(f"3 shards connected to 127.0.0.1:{port}")

        status, raw = request(port, "POST", "/campaigns", body=SPEC)
        assert status == 201, (status, raw)
        assert json.loads(raw)["id"] == cid

        wait_stats(port,
                   lambda s: s["fleet"]["leases"]["granted"] >= 3,
                   60, "work spreading across the fleet")
        victim.kill()  # SIGKILL mid-batch: no goodbye, no lease release
        victim.wait(15)
        print(f"victim shard SIGKILLed (pid {victim.pid}) holding a lease")

        status, raw = request(port, "GET", f"/campaigns/{cid}?wait=240")
        final = json.loads(raw)
        assert status == 200 and final["state"] == "done", final
        batches = final["batches"]
        assert batches["done"] == batches["total"], batches

        stats = wait_stats(
            port, lambda s: s["fleet"]["leases"]["reclaimed"] >= 1,
            30, "reclaiming the victim's lease")
        fleet = stats["fleet"]
        print(f"campaign done: {batches['done']}/{batches['total']} "
              f"batches; leases granted={fleet['leases']['granted']} "
              f"reclaimed={fleet['leases']['reclaimed']} "
              f"fenced={fleet['leases']['fenced']}")

        status, raw = request(port, "GET", f"/campaigns/{cid}/result")
        assert status == 200, status
        assert raw == baseline_bytes, (
            "chaos-ridden fleet artifact differs from the clean run")
        print(f"artifact byte-identical to the clean run "
              f"({len(raw)} bytes)")
    finally:
        for worker in (victim, partitioned, healthy):
            if worker is not None:
                worker.kill()
                worker.wait(15)
        proc.kill()
        proc.wait(15)
    print("fleet-smoke OK")


if __name__ == "__main__":
    main()
