#!/usr/bin/env python
"""Fail when a kernel benchmark run regresses against the committed baseline.

Compares pytest-benchmark JSON files benchmark-by-benchmark on their
*minimum* observed time (minimums are far more robust than means on noisy
shared runners) and exits non-zero when any benchmark is more than
``--threshold`` slower than the baseline.

Because the baseline was recorded on a different machine than CI runs on,
``--control`` may name a benchmark whose code never changes run-to-run
(here: trace generation, which exercises no simulator code).  Each
candidate *file* is normalised by its own control measurement — control
and kernel numbers from the same run share the same machine conditions,
which is the pairing that makes the normalisation valid — and with several
candidate files the per-benchmark best *normalised* time is kept, which
rejects one-off scheduler spikes without ever mixing measurements across
runs.

``--max-ratio CANDIDATE/BASELINE=LIMIT`` additionally gates a candidate
benchmark against a *different* baseline benchmark: the vector-backend
kernel benchmark must stay at or below ``LIMIT`` times the committed
Python-backend baseline (ROADMAP item 1's speedup floor).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple


def load_mins(path: str) -> Dict[str, float]:
    with open(path) as fh:
        data = json.load(fh)
    return {b["name"]: b["stats"]["min"] for b in data["benchmarks"]}


def parse_max_ratio(spec: str) -> Tuple[str, str, float]:
    """Parse ``CANDIDATE/BASELINE=LIMIT`` into its three parts."""
    names, sep, limit = spec.rpartition("=")
    if not sep or "/" not in names:
        raise argparse.ArgumentTypeError(
            f"expected CANDIDATE/BASELINE=LIMIT, got {spec!r}")
    cand_name, base_name = names.split("/", 1)
    try:
        value = float(limit)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"ratio limit {limit!r} is not a number") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"ratio limit must be positive")
    return cand_name, base_name, value


def normalised_minimums(base: Dict[str, float],
                        candidate_paths: Sequence[str],
                        control: Optional[str]) -> Dict[str, float]:
    """Best per-benchmark candidate time, each file normalised by its own
    control measurement before the cross-file minimum is taken."""
    best: Dict[str, float] = {}
    for path in candidate_paths:
        mins = load_mins(path)
        scale = 1.0
        if control:
            if control not in base:
                raise SystemExit(
                    f"control benchmark {control!r} missing from baseline")
            if control not in mins:
                raise SystemExit(
                    f"control benchmark {control!r} missing from {path}")
            scale = mins[control] / base[control]
            print(f"machine-speed control {control} [{path}]: x{scale:.3f}")
        for name, value in mins.items():
            adjusted = value / scale
            if name not in best or adjusted < best[name]:
                best[name] = adjusted
    return best


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("candidate", nargs="+",
                        help="fresh benchmark JSON(s); with several files "
                             "the per-benchmark best normalised time is "
                             "compared, which rejects one-off scheduler "
                             "spikes")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--control", default=None,
                        help="benchmark name used to normalise out "
                             "machine-speed differences (applied per "
                             "candidate file)")
    parser.add_argument("--max-ratio", type=parse_max_ratio, action="append",
                        default=[], metavar="CAND/BASE=LIMIT",
                        help="require candidate benchmark CAND to be at "
                             "most LIMIT times baseline benchmark BASE "
                             "(normalised); repeatable")
    args = parser.parse_args(argv)

    base = load_mins(args.baseline)
    cand = normalised_minimums(base, args.candidate, args.control)

    failures: List[str] = []
    missing = sorted(set(base) - set(cand))
    if missing:
        failures.append(f"benchmarks missing from candidate: {missing}")
    extra = sorted(set(cand) - set(base))
    if extra:
        # Not a failure — a new benchmark has no baseline yet — but never
        # silently drop it: an unbaselined benchmark is unguarded.
        print(f"note: benchmarks present in candidate but not in baseline "
              f"(unguarded): {extra}")

    for name in sorted(set(base) & set(cand)):
        ratio = cand[name] / base[name]
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSION"
            failures.append(f"{name}: {ratio:.3f}x baseline "
                            f"(> {1.0 + args.threshold:.2f}x allowed)")
        print(f"{name}: base {base[name] * 1000:.1f}ms  "
              f"cand {cand[name] * 1000:.1f}ms  "
              f"normalised {ratio:.3f}x  {status}")

    for cand_name, base_name, limit in args.max_ratio:
        if cand_name not in cand:
            failures.append(f"--max-ratio: {cand_name!r} missing from candidate")
            continue
        if base_name not in base:
            failures.append(f"--max-ratio: {base_name!r} missing from baseline")
            continue
        ratio = cand[cand_name] / base[base_name]
        status = "ok"
        if ratio > limit:
            status = "TOO SLOW"
            failures.append(f"{cand_name}: {ratio:.3f}x of baseline "
                            f"{base_name} (> {limit:.2f}x allowed)")
        print(f"{cand_name} vs {base_name}: {ratio:.3f}x "
              f"(limit {limit:.2f}x)  {status}")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nOK: no benchmark regressed beyond "
          f"{args.threshold:.0%} of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
