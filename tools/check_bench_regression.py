#!/usr/bin/env python
"""Fail when a kernel benchmark run regresses against the committed baseline.

Compares two pytest-benchmark JSON files benchmark-by-benchmark on their
*minimum* observed time (minimums are far more robust than means on noisy
shared runners) and exits non-zero when any benchmark is more than
``--threshold`` slower than the baseline.

Because the baseline was recorded on a different machine than CI runs on,
``--control`` may name a benchmark whose code never changes run-to-run
(here: trace generation, which exercises no simulator code).  Every ratio
is then divided by the control's ratio, cancelling out the raw speed
difference between the two machines so the check measures the kernel, not
the hardware.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_mins(path: str) -> dict:
    with open(path) as fh:
        data = json.load(fh)
    return {b["name"]: b["stats"]["min"] for b in data["benchmarks"]}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("candidate", nargs="+",
                        help="fresh benchmark JSON(s); with several files "
                             "the per-benchmark best is compared, which "
                             "rejects one-off scheduler spikes")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--control", default=None,
                        help="benchmark name used to normalise out "
                             "machine-speed differences")
    args = parser.parse_args()

    base = load_mins(args.baseline)
    cand: dict = {}
    for path in args.candidate:
        for name, value in load_mins(path).items():
            cand[name] = min(cand.get(name, float("inf")), value)

    scale = 1.0
    if args.control:
        if args.control not in base or args.control not in cand:
            print(f"control benchmark {args.control!r} missing from "
                  "baseline or candidate", file=sys.stderr)
            return 2
        scale = cand[args.control] / base[args.control]
        print(f"machine-speed control {args.control}: x{scale:.3f}")

    failures = []
    missing = sorted(set(base) - set(cand))
    if missing:
        failures.append(f"benchmarks missing from candidate: {missing}")

    for name in sorted(set(base) & set(cand)):
        ratio = (cand[name] / base[name]) / scale
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSION"
            failures.append(f"{name}: {ratio:.3f}x baseline "
                            f"(> {1.0 + args.threshold:.2f}x allowed)")
        print(f"{name}: base {base[name] * 1000:.1f}ms  "
              f"cand {cand[name] * 1000:.1f}ms  "
              f"normalised {ratio:.3f}x  {status}")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nOK: no benchmark regressed beyond "
          f"{args.threshold:.0%} of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
